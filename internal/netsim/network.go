package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
)

// Response is the outcome of one probe round trip.
type Response struct {
	// Data is the raw reply packet; nil when the probe timed out.
	//
	// Lifetime: when the probe was issued through ProbeInto/DeliverIPInto,
	// Data aliases the caller's ReplyBuffer and is only valid until the next
	// Probe/DeliverIP call for the same prober (the same buffer). Probe and
	// DeliverIP without a buffer return freshly allocated Data with no such
	// restriction.
	Data []byte
	// RTT is the simulated round-trip time for delivered replies.
	RTT time.Duration
	// Timeout is true when no reply arrived (address down, block in outage,
	// or packet loss) — indistinguishable causes, as on the real Internet.
	Timeout bool
	// SendFailed is true when the probe never left the vantage point (local
	// send error, e.g. during a vantage blackout). Unlike a timeout this is
	// knowably transient and carries no evidence about the target, so a
	// prober may retry it.
	SendFailed bool
}

// TapVerdict is the fate a Tap assigns to an outbound probe.
type TapVerdict int

const (
	// TapDeliver lets the probe through unharmed.
	TapDeliver TapVerdict = iota
	// TapDrop loses the probe silently in transit (indistinguishable from a
	// down target).
	TapDrop
	// TapSendError fails the probe at the vantage point before it is sent.
	TapSendError
	// TapAdminProhibited has an intermediate device eat the probe and answer
	// with an ICMP administratively-prohibited unreachable (rate limiting).
	TapAdminProhibited
)

// TapBatch is an optional Tap extension for batched delivery: a tap that
// can assign outbound fates to a whole batch of probes with one lock
// acquisition. OutboundBatch must fill times[i] and verdicts[i] with
// exactly what a sequential Outbound(dsts[i], now) call would return, in
// slice order. DeliverBatch consults it once per batch, which means every
// outbound decision of the batch is made before any inbound processing; a
// tap whose Inbound behavior depends on interleaving with its own Outbound
// calls must not implement TapBatch. internal/faults.Injector implements
// it: all of its decisions are PRF-pure per (destination, timestamp)
// except the per-block rate-limit counter, which sees the same per-block
// probe order either way.
type TapBatch interface {
	Tap
	OutboundBatch(dsts []Addr, now time.Time, times []time.Time, verdicts []TapVerdict)
}

// Tap perturbs the delivery path — the hook the fault-injection layer
// (internal/faults) attaches to. A nil tap, like a zero-value injector, is
// a no-op. Implementations must be safe for concurrent use; SetTap must not
// race with probing (same rule as AddBlock).
type Tap interface {
	// Outbound is consulted before a probe is routed. It returns the
	// (possibly skewed) timestamp delivery should use and the verdict.
	Outbound(dst Addr, now time.Time) (time.Time, TapVerdict)
	// Inbound may corrupt or replace a reply on its way back. Returning nil
	// drops the reply (the probe times out).
	//
	// The reply slice may be a prober's reusable ReplyBuffer storage that is
	// overwritten by its next probe: implementations must not retain it past
	// the call, and must copy-on-corrupt (return a fresh slice) rather than
	// mutate it in place, so a tap never scribbles on buffers it does not
	// own. internal/faults follows this contract.
	Inbound(dst Addr, reply []byte, now time.Time) []byte
}

// ReplyBuffer is the reusable reply storage one prober threads through
// ProbeInto/DeliverIPInto so that reply construction allocates nothing in
// steady state. The zero value is ready to use; the buffer grows to the
// largest reply seen and is reused afterwards.
//
// A ReplyBuffer belongs to exactly one prober (one probing goroutine): the
// Response.Data returned through it is only valid until that prober's next
// ProbeInto/DeliverIPInto call, and the buffer itself must not be shared
// across goroutines.
type ReplyBuffer struct {
	// icmp holds the ICMP-layer reply Probe builds; ip holds the IPv4
	// encapsulation DeliverIP wraps around it. They are distinct so the
	// wrap step never copies a slice over itself.
	icmp []byte
	ip   []byte
}

// RetainedBytes reports the heap bytes the buffer currently retains across
// calls — what a long-lived prober worker holds onto per reply buffer. The
// monitor's O(workers) memory contract is pinned against this.
func (rb *ReplyBuffer) RetainedBytes() int {
	if rb == nil {
		return 0
	}
	return cap(rb.icmp) + cap(rb.ip)
}

// icmpScratch returns the empty ICMP-layer scratch to append into, or nil
// (allocate fresh) when no buffer is in play.
func (rb *ReplyBuffer) icmpScratch() []byte {
	if rb == nil {
		return nil
	}
	return rb.icmp[:0]
}

// ipScratch is icmpScratch for the IPv4 encapsulation layer.
func (rb *ReplyBuffer) ipScratch() []byte {
	if rb == nil {
		return nil
	}
	return rb.ip[:0]
}

// Counters accumulates network-wide accounting, used to check the paper's
// "<20 probes per hour per /24" claim.
type Counters struct {
	Probes      atomic.Int64
	Replies     atomic.Int64
	Timeouts    atomic.Int64
	Lost        atomic.Int64
	Malformed   atomic.Int64
	RateLimited atomic.Int64
}

// Network is the simulated Internet edge: a set of /24 blocks addressable
// by ICMP echo probes. Probe is safe for concurrent use; topology mutation
// (AddBlock) must not race with probing.
type Network struct {
	mu     sync.RWMutex
	blocks map[BlockID]*Block
	seed   uint64
	tap    Tap
	// gen is the topology generation, bumped by AddBlock and SetTap; batch
	// route caches (BatchBuffer) validate against it so a cached *Block or
	// tap never outlives the mutation that replaced it.
	gen atomic.Uint64

	// Stats counts global probe outcomes.
	Stats Counters
	// perBlockProbes counts probes per block for radiation-budget checks.
	// A plain map under mu (counters pre-registered by AddBlock) rather
	// than a sync.Map: the uint32 key would be boxed on every sync.Map
	// lookup, putting one allocation on every probe. Counter pointers are
	// stable for the lifetime of the network (registration never replaces
	// an existing counter), which is what lets batch route caches hold
	// them across generations.
	perBlockProbes map[BlockID]*atomic.Int64
}

// statsAcc accumulates Counters deltas locally so one delivery (or one
// whole batch) flushes them with at most one atomic add per counter
// instead of one per event. Flush order differs from the historical
// per-event adds, but the counters are monotonic totals read after
// quiescence, so only the totals are observable.
type statsAcc struct {
	probes, replies, timeouts, lost, malformed, rateLimited int64
}

// flush applies the accumulated deltas and resets the accumulator.
func (a *statsAcc) flush(c *Counters) {
	if a.probes != 0 {
		c.Probes.Add(a.probes)
	}
	if a.replies != 0 {
		c.Replies.Add(a.replies)
	}
	if a.timeouts != 0 {
		c.Timeouts.Add(a.timeouts)
	}
	if a.lost != 0 {
		c.Lost.Add(a.lost)
	}
	if a.malformed != 0 {
		c.Malformed.Add(a.malformed)
	}
	if a.rateLimited != 0 {
		c.RateLimited.Add(a.rateLimited)
	}
	*a = statsAcc{}
}

// tapPre carries a pre-computed outbound tap decision into the delivery
// core, so a batch can consult a TapBatch once for many probes. The zero
// value (ok == false) means "ask the tap inline" — the scalar path.
type tapPre struct {
	t  time.Time
	v  TapVerdict
	ok bool
}

// outageCache memoizes Block.InOutage per (block, instant): every probe of
// a block within one batched round shares the same delivery timestamp, so
// the outage schedule is walked once per (block, round) instead of once or
// twice per probe. Keying on the exact instant makes the cache self-
// invalidating across rounds and immune to per-destination clock skew from
// a tap. A nil cache disables memoization (the scalar path).
type outageCache struct {
	at  int64
	in  bool
	set bool
}

func (c *outageCache) inOutage(blk *Block, now time.Time) bool {
	if c == nil {
		return blk.InOutage(now)
	}
	ns := now.UnixNano()
	if !c.set || c.at != ns {
		c.at = ns
		c.in = blk.InOutage(now)
		c.set = true
	}
	return c.in
}

// NewNetwork creates an empty simulated network with the given seed.
func NewNetwork(seed uint64) *Network {
	return &Network{
		blocks:         make(map[BlockID]*Block),
		seed:           seed,
		perBlockProbes: make(map[BlockID]*atomic.Int64),
	}
}

// SetTap installs (or, with nil, removes) a delivery-path fault tap. Like
// AddBlock it must not race with probing.
func (n *Network) SetTap(t Tap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = t
	n.gen.Add(1)
}

// AddBlock registers a block. Re-adding a BlockID replaces it.
func (n *Network) AddBlock(b *Block) {
	b.hops = b.PathHops()
	if b.dmemo == nil {
		for _, bh := range b.Behaviors {
			switch bh.(type) {
			case Diurnal, Intermittent:
				b.dmemo = new([256]hostMemo)
			}
			if b.dmemo != nil {
				break
			}
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocks[b.ID] = b
	if n.perBlockProbes[b.ID] == nil {
		n.perBlockProbes[b.ID] = new(atomic.Int64)
	}
	n.gen.Add(1)
}

// Block returns the block with the given id, or nil.
func (n *Network) Block(id BlockID) *Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[id]
}

// NumBlocks returns the number of registered blocks.
func (n *Network) NumBlocks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.blocks)
}

// BlockIDs returns all registered block ids in ascending order, so callers
// iterating the network never inherit map order.
func (n *Network) BlockIDs() []BlockID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]BlockID, 0, len(n.blocks))
	for id := range n.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Probe sends the marshalled ICMP packet pkt to dst at virtual time now and
// returns the outcome. Malformed probes are dropped (counted, timeout), as
// a real network stack would discard them. Response.Data is freshly
// allocated; ProbeInto is the buffer-reusing form.
func (n *Network) Probe(dst Addr, pkt []byte, now time.Time) Response {
	return n.probe(nil, dst, pkt, now)
}

// ProbeInto is Probe with reply construction into the caller's reusable
// buffer: Response.Data aliases buf and is only valid until the caller's
// next ProbeInto/DeliverIPInto call with the same buffer.
func (n *Network) ProbeInto(buf *ReplyBuffer, dst Addr, pkt []byte, now time.Time) Response {
	return n.probe(buf, dst, pkt, now)
}

func (n *Network) probe(buf *ReplyBuffer, dst Addr, pkt []byte, now time.Time) Response {
	var acc statsAcc
	acc.probes++
	n.countBlockProbe(dst.Block)

	var echo icmp.Echo
	echoOK := icmp.ParseEchoInto(&echo, pkt) == nil && !echo.Reply

	n.mu.RLock()
	blk := n.blocks[dst.Block]
	tap := n.tap
	n.mu.RUnlock()

	var resp Response
	sc := n.probeCore(blk, tap, buf.icmpScratch(), dst, pkt, &echo, echoOK, now, tapPre{}, nil, &acc, &resp)
	if buf != nil {
		buf.icmp = sc
	}
	acc.flush(&n.Stats)
	return resp
}

// probeCore is the ICMP-layer delivery path with routing already resolved:
// consult the tap, evaluate the block's behavior at now, and build the
// reply. echo is the caller-parsed request (echoOK false marks a malformed
// or non-request message). scratch is the empty ICMP-layer scratch to
// append the reply into (nil allocates fresh); the possibly-grown backing
// is returned so the owner keeps its capacity. Counter deltas accumulate in
// acc — the caller flushes. pre, when set, replaces the inline tap.Outbound
// consultation (batched taps); oc, when non-nil, memoizes the block's
// outage lookups.
//
// Both the scalar probe path and DeliverBatch run through this one body:
// the batch path's byte-identical contract is equivalence by construction,
// not by parallel maintenance of two delivery implementations. The outcome
// lands in *resp (an out-parameter so per-probe results are written once
// instead of copied up the call chain); the ICMP scratch backing is the
// return value.
func (n *Network) probeCore(blk *Block, tap Tap, scratch []byte, dst Addr, pkt []byte, echo *icmp.Echo, echoOK bool, now time.Time, pre tapPre, oc *outageCache, acc *statsAcc, resp *Response) []byte {
	*resp = Response{}
	if !echoOK {
		acc.malformed++
		resp.Timeout = true
		return scratch
	}

	if tap != nil {
		var v TapVerdict
		if pre.ok {
			now, v = pre.t, pre.v
		} else {
			now, v = tap.Outbound(dst, now)
		}
		switch v {
		case TapDrop:
			acc.lost++
			acc.timeouts++
			resp.Timeout = true
			return scratch
		case TapSendError:
			resp.Timeout, resp.SendFailed = true, true
			return scratch
		case TapAdminProhibited:
			acc.rateLimited++
			unreach := icmp.Unreachable{Code: icmp.CodeAdminProhibited, Original: pkt}
			un, uerr := unreach.MarshalAppend(scratch)
			if uerr != nil {
				acc.timeouts++
				resp.Timeout = true
				return scratch
			}
			rtt := 20 * time.Millisecond
			if blk != nil {
				rtt = blk.LatencyBase
			}
			resp.Data, resp.RTT = un, rtt
			n.inbound(tap, dst, resp, now, acc)
			return un
		}
	}

	if blk == nil {
		// Unrouted space: silence.
		acc.timeouts++
		resp.Timeout = true
		return scratch
	}

	// Path loss, one Bernoulli draw per round trip, keyed so retransmissions
	// (new seq) redraw but duplicates (same seq) are consistent.
	if blk.Loss > 0 {
		k := prfFloat3(n.seed^blk.Seed, dst.key(), uint64(echo.ID)<<16|uint64(echo.Seq), uint64(now.UnixNano()))
		if k < blk.Loss {
			acc.lost++
			acc.timeouts++
			resp.Timeout = true
			return scratch
		}
	}

	// RespondsAt, with the outage lookup routed through the per-round memo.
	bh := blk.Behaviors[dst.Host]
	if bh == nil || oc.inOutage(blk, now) || !blk.hostUp(dst.Host, bh, now) {
		// During an outage an upstream gateway may answer on the block's
		// behalf with destination-unreachable.
		if blk.GatewayUnreachableProb > 0 && oc.inOutage(blk, now) {
			u := prfFloat3(n.seed^blk.Seed^0x6a7e, dst.key(), uint64(echo.Seq), uint64(now.UnixNano()))
			if u < blk.GatewayUnreachableProb {
				unreach := icmp.Unreachable{Code: icmp.CodeHostUnreachable, Original: pkt}
				un, err := unreach.MarshalAppend(scratch)
				if err == nil {
					acc.replies++
					resp.Data, resp.RTT = un, blk.LatencyBase
					n.inbound(tap, dst, resp, now, acc)
					return un
				}
			}
		}
		acc.timeouts++
		resp.Timeout = true
		return scratch
	}

	if !blk.allowReply(now) {
		acc.rateLimited++
		acc.timeouts++
		resp.Timeout = true
		return scratch
	}

	// Build the echo reply straight from the parsed request: same ID, Seq,
	// and payload (echo.Payload aliases pkt; MarshalAppend copies it into
	// the reply, so the alias never outlives this call).
	echoReply := icmp.Echo{Reply: true, ID: echo.ID, Seq: echo.Seq, Payload: echo.Payload}
	reply, err := echoReply.MarshalAppend(scratch)
	if err != nil {
		// Cannot happen for a parsed request, but fail closed.
		acc.malformed++
		resp.Timeout = true
		return scratch
	}
	rtt := blk.LatencyBase
	if blk.LatencyJitter > 0 {
		j := prfFloat3(n.seed^blk.Seed^0x9badcafe, dst.key(), uint64(echo.Seq), uint64(now.UnixNano()))
		rtt += time.Duration(j * float64(blk.LatencyJitter))
	}
	acc.replies++
	resp.Data, resp.RTT = reply, rtt
	n.inbound(tap, dst, resp, now, acc)
	return reply
}

// inbound runs a delivered reply back through the tap, which may corrupt
// or drop it, mutating resp in place.
func (n *Network) inbound(tap Tap, dst Addr, resp *Response, now time.Time, acc *statsAcc) {
	if tap == nil || resp.Data == nil {
		return
	}
	data := tap.Inbound(dst, resp.Data, now)
	if data == nil {
		acc.timeouts++
		*resp = Response{Timeout: true}
		return
	}
	resp.Data = data
}

// DeliverIP routes a full IPv4 packet into the simulated edge: the header
// is parsed and validated, the destination is taken from it, the path's
// hop count is charged against the TTL, and the ICMP payload is delivered
// as Probe would. Replies come back IPv4-encapsulated with source and
// destination swapped. This is the path real probes take; Probe remains
// for callers that operate below the IP layer. Response.Data is freshly
// allocated; DeliverIPInto is the buffer-reusing form.
func (n *Network) DeliverIP(pkt []byte, now time.Time) Response {
	return n.deliverIP(nil, pkt, now)
}

// DeliverIPInto is DeliverIP with reply construction into the caller's
// reusable buffer: Response.Data aliases buf and is only valid until the
// caller's next ProbeInto/DeliverIPInto call with the same buffer.
func (n *Network) DeliverIPInto(buf *ReplyBuffer, pkt []byte, now time.Time) Response {
	return n.deliverIP(buf, pkt, now)
}

func (n *Network) deliverIP(buf *ReplyBuffer, pkt []byte, now time.Time) Response {
	var hdr ipv4.Header
	payload, err := ipv4.ParseHeader(&hdr, pkt)
	if err != nil || hdr.Protocol != ipv4.ProtoICMP {
		n.Stats.Probes.Add(1)
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}
	dst := AddrFromIP(hdr.Dst)

	var echo icmp.Echo
	echoOK := icmp.ParseEchoInto(&echo, payload) == nil && !echo.Reply

	var acc statsAcc
	n.mu.RLock()
	blk := n.blocks[dst.Block]
	tap := n.tap
	cnt := n.perBlockProbes[dst.Block]
	n.mu.RUnlock()
	if cnt == nil {
		cnt = n.registerBlockCounter(dst.Block)
	}

	var resp Response
	icmpOut, ipOut := n.deliverCore(blk, tap, buf.icmpScratch(), buf.ipScratch(), &hdr, dst, payload, &echo, echoOK, now, tapPre{}, nil, &acc, &resp)
	if buf != nil {
		buf.icmp = icmpOut
		buf.ip = ipOut
	}
	cnt.Add(1)
	acc.flush(&n.Stats)
	return resp
}

// deliverCore is the IP-layer delivery path with routing resolved and the
// payload echo pre-parsed: charge the path's hop count against the TTL,
// run the ICMP core, and wrap any reply back into an IPv4 datagram with
// source and destination swapped. The outcome lands in *resp (see
// probeCore); it returns the possibly-grown ICMP and IP scratch backings
// so the owner keeps their capacity. Shared verbatim by the scalar
// DeliverIP path and DeliverBatch.
func (n *Network) deliverCore(blk *Block, tap Tap, icmpScratch, ipScratch []byte, hdr *ipv4.Header, dst Addr, payload []byte, echo *icmp.Echo, echoOK bool, now time.Time, pre tapPre, oc *outageCache, acc *statsAcc, resp *Response) ([]byte, []byte) {
	acc.probes++
	hops := 0
	if blk != nil {
		hops = blk.PathHops()
		// The packet must survive the path.
		if hops > 0 && int(hdr.TTL) <= hops {
			acc.timeouts++
			*resp = Response{Timeout: true}
			return icmpScratch, ipScratch
		}
	}
	icmpOut := n.probeCore(blk, tap, icmpScratch, dst, payload, echo, echoOK, now, pre, oc, acc, resp)
	if resp.Timeout || resp.Data == nil {
		return icmpOut, ipScratch
	}
	replyHdr := ipv4.Header{
		ID:       hdr.ID,
		TTL:      byte(ipv4.DefaultTTL - min(hops, ipv4.DefaultTTL-1)),
		Protocol: ipv4.ProtoICMP,
		Src:      hdr.Dst,
		Dst:      hdr.Src,
	}
	// resp.Data lives in the ICMP scratch (or a tap-corrupted copy); the
	// wrap appends into the distinct IP scratch, so no self-overlapping copy.
	wrapped, err := replyHdr.MarshalAppend(ipScratch, resp.Data)
	if err != nil {
		acc.malformed++
		*resp = Response{Timeout: true}
		return icmpOut, ipScratch
	}
	resp.Data = wrapped
	return icmpOut, wrapped
}

// registerBlockCounter registers (or returns the existing) per-block probe
// counter for id under the write lock. Counter pointers are stable: once
// registered a counter is never replaced, so cached pointers stay valid
// for the network's lifetime. Off the steady-state path — AddBlock
// pre-registers; only probes into unrouted space land here.
func (n *Network) registerBlockCounter(id BlockID) *atomic.Int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := n.perBlockProbes[id]
	if c == nil {
		//lint:allow hotalloc: one-time lazy registration for unrouted blocks, not reached on warm rounds
		c = new(atomic.Int64)
		n.perBlockProbes[id] = c
	}
	return c
}

func (n *Network) countBlockProbe(id BlockID) {
	n.mu.RLock()
	c := n.perBlockProbes[id]
	n.mu.RUnlock()
	if c == nil {
		c = n.registerBlockCounter(id)
	}
	c.Add(1)
}

// ProbesToBlock returns how many probes were addressed to the block.
func (n *Network) ProbesToBlock(id BlockID) int64 {
	n.mu.RLock()
	c := n.perBlockProbes[id]
	n.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// ProbeRatePerHour converts a probe count over an observation window into
// the per-hour rate the paper budgets against background radiation.
func ProbeRatePerHour(probes int64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(probes) / window.Hours()
}

// String summarizes counters for logs.
func (c *Counters) String() string {
	return fmt.Sprintf("probes=%d replies=%d timeouts=%d lost=%d malformed=%d",
		c.Probes.Load(), c.Replies.Load(), c.Timeouts.Load(), c.Lost.Load(), c.Malformed.Load())
}
