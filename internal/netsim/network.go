package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
)

// Response is the outcome of one probe round trip.
type Response struct {
	// Data is the raw reply packet; nil when the probe timed out.
	//
	// Lifetime: when the probe was issued through ProbeInto/DeliverIPInto,
	// Data aliases the caller's ReplyBuffer and is only valid until the next
	// Probe/DeliverIP call for the same prober (the same buffer). Probe and
	// DeliverIP without a buffer return freshly allocated Data with no such
	// restriction.
	Data []byte
	// RTT is the simulated round-trip time for delivered replies.
	RTT time.Duration
	// Timeout is true when no reply arrived (address down, block in outage,
	// or packet loss) — indistinguishable causes, as on the real Internet.
	Timeout bool
	// SendFailed is true when the probe never left the vantage point (local
	// send error, e.g. during a vantage blackout). Unlike a timeout this is
	// knowably transient and carries no evidence about the target, so a
	// prober may retry it.
	SendFailed bool
}

// TapVerdict is the fate a Tap assigns to an outbound probe.
type TapVerdict int

const (
	// TapDeliver lets the probe through unharmed.
	TapDeliver TapVerdict = iota
	// TapDrop loses the probe silently in transit (indistinguishable from a
	// down target).
	TapDrop
	// TapSendError fails the probe at the vantage point before it is sent.
	TapSendError
	// TapAdminProhibited has an intermediate device eat the probe and answer
	// with an ICMP administratively-prohibited unreachable (rate limiting).
	TapAdminProhibited
)

// Tap perturbs the delivery path — the hook the fault-injection layer
// (internal/faults) attaches to. A nil tap, like a zero-value injector, is
// a no-op. Implementations must be safe for concurrent use; SetTap must not
// race with probing (same rule as AddBlock).
type Tap interface {
	// Outbound is consulted before a probe is routed. It returns the
	// (possibly skewed) timestamp delivery should use and the verdict.
	Outbound(dst Addr, now time.Time) (time.Time, TapVerdict)
	// Inbound may corrupt or replace a reply on its way back. Returning nil
	// drops the reply (the probe times out).
	//
	// The reply slice may be a prober's reusable ReplyBuffer storage that is
	// overwritten by its next probe: implementations must not retain it past
	// the call, and must copy-on-corrupt (return a fresh slice) rather than
	// mutate it in place, so a tap never scribbles on buffers it does not
	// own. internal/faults follows this contract.
	Inbound(dst Addr, reply []byte, now time.Time) []byte
}

// ReplyBuffer is the reusable reply storage one prober threads through
// ProbeInto/DeliverIPInto so that reply construction allocates nothing in
// steady state. The zero value is ready to use; the buffer grows to the
// largest reply seen and is reused afterwards.
//
// A ReplyBuffer belongs to exactly one prober (one probing goroutine): the
// Response.Data returned through it is only valid until that prober's next
// ProbeInto/DeliverIPInto call, and the buffer itself must not be shared
// across goroutines.
type ReplyBuffer struct {
	// icmp holds the ICMP-layer reply Probe builds; ip holds the IPv4
	// encapsulation DeliverIP wraps around it. They are distinct so the
	// wrap step never copies a slice over itself.
	icmp []byte
	ip   []byte
}

// RetainedBytes reports the heap bytes the buffer currently retains across
// calls — what a long-lived prober worker holds onto per reply buffer. The
// monitor's O(workers) memory contract is pinned against this.
func (rb *ReplyBuffer) RetainedBytes() int {
	if rb == nil {
		return 0
	}
	return cap(rb.icmp) + cap(rb.ip)
}

// icmpScratch returns the empty ICMP-layer scratch to append into, or nil
// (allocate fresh) when no buffer is in play.
func (rb *ReplyBuffer) icmpScratch() []byte {
	if rb == nil {
		return nil
	}
	return rb.icmp[:0]
}

// ipScratch is icmpScratch for the IPv4 encapsulation layer.
func (rb *ReplyBuffer) ipScratch() []byte {
	if rb == nil {
		return nil
	}
	return rb.ip[:0]
}

// Counters accumulates network-wide accounting, used to check the paper's
// "<20 probes per hour per /24" claim.
type Counters struct {
	Probes      atomic.Int64
	Replies     atomic.Int64
	Timeouts    atomic.Int64
	Lost        atomic.Int64
	Malformed   atomic.Int64
	RateLimited atomic.Int64
}

// Network is the simulated Internet edge: a set of /24 blocks addressable
// by ICMP echo probes. Probe is safe for concurrent use; topology mutation
// (AddBlock) must not race with probing.
type Network struct {
	mu     sync.RWMutex
	blocks map[BlockID]*Block
	seed   uint64
	tap    Tap

	// Stats counts global probe outcomes.
	Stats Counters
	// perBlockProbes counts probes per block for radiation-budget checks.
	// A plain map under mu (counters pre-registered by AddBlock) rather
	// than a sync.Map: the uint32 key would be boxed on every sync.Map
	// lookup, putting one allocation on every probe.
	perBlockProbes map[BlockID]*atomic.Int64
}

// NewNetwork creates an empty simulated network with the given seed.
func NewNetwork(seed uint64) *Network {
	return &Network{
		blocks:         make(map[BlockID]*Block),
		seed:           seed,
		perBlockProbes: make(map[BlockID]*atomic.Int64),
	}
}

// SetTap installs (or, with nil, removes) a delivery-path fault tap. Like
// AddBlock it must not race with probing.
func (n *Network) SetTap(t Tap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = t
}

// AddBlock registers a block. Re-adding a BlockID replaces it.
func (n *Network) AddBlock(b *Block) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocks[b.ID] = b
	if n.perBlockProbes[b.ID] == nil {
		n.perBlockProbes[b.ID] = new(atomic.Int64)
	}
}

// Block returns the block with the given id, or nil.
func (n *Network) Block(id BlockID) *Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[id]
}

// NumBlocks returns the number of registered blocks.
func (n *Network) NumBlocks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.blocks)
}

// BlockIDs returns all registered block ids in ascending order, so callers
// iterating the network never inherit map order.
func (n *Network) BlockIDs() []BlockID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]BlockID, 0, len(n.blocks))
	for id := range n.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Probe sends the marshalled ICMP packet pkt to dst at virtual time now and
// returns the outcome. Malformed probes are dropped (counted, timeout), as
// a real network stack would discard them. Response.Data is freshly
// allocated; ProbeInto is the buffer-reusing form.
func (n *Network) Probe(dst Addr, pkt []byte, now time.Time) Response {
	return n.probe(nil, dst, pkt, now)
}

// ProbeInto is Probe with reply construction into the caller's reusable
// buffer: Response.Data aliases buf and is only valid until the caller's
// next ProbeInto/DeliverIPInto call with the same buffer.
func (n *Network) ProbeInto(buf *ReplyBuffer, dst Addr, pkt []byte, now time.Time) Response {
	return n.probe(buf, dst, pkt, now)
}

func (n *Network) probe(buf *ReplyBuffer, dst Addr, pkt []byte, now time.Time) Response {
	n.Stats.Probes.Add(1)
	n.countBlockProbe(dst.Block)

	var echo icmp.Echo
	if err := icmp.ParseEchoInto(&echo, pkt); err != nil || echo.Reply {
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}

	n.mu.RLock()
	blk := n.blocks[dst.Block]
	tap := n.tap
	n.mu.RUnlock()

	if tap != nil {
		var v TapVerdict
		now, v = tap.Outbound(dst, now)
		switch v {
		case TapDrop:
			n.Stats.Lost.Add(1)
			n.Stats.Timeouts.Add(1)
			return Response{Timeout: true}
		case TapSendError:
			return Response{Timeout: true, SendFailed: true}
		case TapAdminProhibited:
			n.Stats.RateLimited.Add(1)
			un, uerr := (&icmp.Unreachable{Code: icmp.CodeAdminProhibited, Original: pkt}).MarshalAppend(buf.icmpScratch())
			if uerr != nil {
				n.Stats.Timeouts.Add(1)
				return Response{Timeout: true}
			}
			if buf != nil {
				buf.icmp = un
			}
			rtt := 20 * time.Millisecond
			if blk != nil {
				rtt = blk.LatencyBase
			}
			return n.inbound(tap, dst, Response{Data: un, RTT: rtt}, now)
		}
	}

	if blk == nil {
		// Unrouted space: silence.
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}

	// Path loss, one Bernoulli draw per round trip, keyed so retransmissions
	// (new seq) redraw but duplicates (same seq) are consistent.
	if blk.Loss > 0 {
		k := prfFloat(n.seed^blk.Seed, dst.key(), uint64(echo.ID)<<16|uint64(echo.Seq), uint64(now.UnixNano()))
		if k < blk.Loss {
			n.Stats.Lost.Add(1)
			n.Stats.Timeouts.Add(1)
			return Response{Timeout: true}
		}
	}

	if !blk.RespondsAt(dst.Host, now) {
		// During an outage an upstream gateway may answer on the block's
		// behalf with destination-unreachable.
		if blk.GatewayUnreachableProb > 0 && blk.InOutage(now) {
			u := prfFloat(n.seed^blk.Seed^0x6a7e, dst.key(), uint64(echo.Seq), uint64(now.UnixNano()))
			if u < blk.GatewayUnreachableProb {
				un, err := (&icmp.Unreachable{Code: icmp.CodeHostUnreachable, Original: pkt}).MarshalAppend(buf.icmpScratch())
				if err == nil {
					if buf != nil {
						buf.icmp = un
					}
					n.Stats.Replies.Add(1)
					return n.inbound(tap, dst, Response{Data: un, RTT: blk.LatencyBase}, now)
				}
			}
		}
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}

	if !blk.allowReply(now) {
		n.Stats.RateLimited.Add(1)
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}

	// Build the echo reply straight from the parsed request: same ID, Seq,
	// and payload (echo.Payload aliases pkt; MarshalAppend copies it into
	// the reply, so the alias never outlives this call).
	echoReply := icmp.Echo{Reply: true, ID: echo.ID, Seq: echo.Seq, Payload: echo.Payload}
	reply, err := echoReply.MarshalAppend(buf.icmpScratch())
	if err != nil {
		// Cannot happen for a parsed request, but fail closed.
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}
	if buf != nil {
		buf.icmp = reply
	}
	rtt := blk.LatencyBase
	if blk.LatencyJitter > 0 {
		j := prfFloat(n.seed^blk.Seed^0x9badcafe, dst.key(), uint64(echo.Seq), uint64(now.UnixNano()))
		rtt += time.Duration(j * float64(blk.LatencyJitter))
	}
	n.Stats.Replies.Add(1)
	return n.inbound(tap, dst, Response{Data: reply, RTT: rtt}, now)
}

// inbound runs a delivered reply back through the tap, which may corrupt
// or drop it.
func (n *Network) inbound(tap Tap, dst Addr, resp Response, now time.Time) Response {
	if tap == nil || resp.Data == nil {
		return resp
	}
	data := tap.Inbound(dst, resp.Data, now)
	if data == nil {
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}
	resp.Data = data
	return resp
}

// DeliverIP routes a full IPv4 packet into the simulated edge: the header
// is parsed and validated, the destination is taken from it, the path's
// hop count is charged against the TTL, and the ICMP payload is delivered
// as Probe would. Replies come back IPv4-encapsulated with source and
// destination swapped. This is the path real probes take; Probe remains
// for callers that operate below the IP layer. Response.Data is freshly
// allocated; DeliverIPInto is the buffer-reusing form.
func (n *Network) DeliverIP(pkt []byte, now time.Time) Response {
	return n.deliverIP(nil, pkt, now)
}

// DeliverIPInto is DeliverIP with reply construction into the caller's
// reusable buffer: Response.Data aliases buf and is only valid until the
// caller's next ProbeInto/DeliverIPInto call with the same buffer.
func (n *Network) DeliverIPInto(buf *ReplyBuffer, pkt []byte, now time.Time) Response {
	return n.deliverIP(buf, pkt, now)
}

func (n *Network) deliverIP(buf *ReplyBuffer, pkt []byte, now time.Time) Response {
	var hdr ipv4.Header
	payload, err := ipv4.ParseHeader(&hdr, pkt)
	if err != nil || hdr.Protocol != ipv4.ProtoICMP {
		n.Stats.Probes.Add(1)
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}
	dst := AddrFromIP(hdr.Dst)
	n.mu.RLock()
	blk := n.blocks[dst.Block]
	n.mu.RUnlock()
	if blk != nil {
		// The packet must survive the path.
		if !ipv4.TTLSurvives(pkt, blk.PathHops()) {
			n.Stats.Probes.Add(1)
			n.countBlockProbe(dst.Block)
			n.Stats.Timeouts.Add(1)
			return Response{Timeout: true}
		}
	}
	resp := n.probe(buf, dst, payload, now)
	if resp.Timeout || resp.Data == nil {
		return resp
	}
	hops := 0
	if blk != nil {
		hops = blk.PathHops()
	}
	replyHdr := ipv4.Header{
		ID:       hdr.ID,
		TTL:      byte(ipv4.DefaultTTL - min(hops, ipv4.DefaultTTL-1)),
		Protocol: ipv4.ProtoICMP,
		Src:      hdr.Dst,
		Dst:      hdr.Src,
	}
	// resp.Data lives in buf.icmp (or a tap-corrupted copy); the wrap
	// appends into the distinct buf.ip, so no self-overlapping copy.
	wrapped, err := replyHdr.MarshalAppend(buf.ipScratch(), resp.Data)
	if err != nil {
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}
	if buf != nil {
		buf.ip = wrapped
	}
	resp.Data = wrapped
	return resp
}

func (n *Network) countBlockProbe(id BlockID) {
	n.mu.RLock()
	c := n.perBlockProbes[id]
	n.mu.RUnlock()
	if c == nil {
		// Probe to a block never registered (unrouted space): register a
		// counter lazily. Off the steady-state path — AddBlock pre-registers.
		n.mu.Lock()
		if c = n.perBlockProbes[id]; c == nil {
			c = new(atomic.Int64)
			n.perBlockProbes[id] = c
		}
		n.mu.Unlock()
	}
	c.Add(1)
}

// ProbesToBlock returns how many probes were addressed to the block.
func (n *Network) ProbesToBlock(id BlockID) int64 {
	n.mu.RLock()
	c := n.perBlockProbes[id]
	n.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// ProbeRatePerHour converts a probe count over an observation window into
// the per-hour rate the paper budgets against background radiation.
func ProbeRatePerHour(probes int64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(probes) / window.Hours()
}

// String summarizes counters for logs.
func (c *Counters) String() string {
	return fmt.Sprintf("probes=%d replies=%d timeouts=%d lost=%d malformed=%d",
		c.Probes.Load(), c.Replies.Load(), c.Timeouts.Load(), c.Lost.Load(), c.Malformed.Load())
}
