package netsim

// Batched delivery: DeliverBatch crosses the netsim boundary once for a
// whole round of probes, amortizing the route lookup, lock acquisition,
// tap walk, outage-schedule evaluation, and per-block counter updates that
// the scalar DeliverIPInto path pays per packet.
//
// Determinism contract: a batch produces byte-identical Responses, in
// order, to delivering pkts[0], pkts[1], ... sequentially through
// DeliverIPInto at the same now. Batching only reorders *work* — routing
// is resolved once per destination block, the tap is consulted once per
// batch, outage schedules are memoized per (block, instant) — never
// observable *results*: every PRF draw is keyed by (seed, destination,
// probe identity, timestamp) exactly as on the scalar path, and the only
// order-dependent state in the simulator (per-block reply rate limits,
// per-block tap state) sees its block's packets in the same relative
// order either way. The per-packet delivery logic itself is the shared
// probeCore/deliverCore — there is no second implementation to drift.

import (
	"sync/atomic"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
)

// routeEntry is one resolved destination block in a BatchBuffer's route
// cache: the block and its probe counter are looked up once per topology
// generation and reused across batches, and per-batch probe counts
// accumulate here so each block gets one atomic add per batch.
type routeEntry struct {
	id     BlockID
	blk    *Block        // nil for unrouted space
	cnt    *atomic.Int64 // per-block probe counter; registered lazily for unrouted blocks
	probes int64         // probes accumulated this batch, flushed in pass 5
	oc     outageCache   // per-(block, instant) outage memo
}

// pktMeta is the per-packet parse/resolve state DeliverBatch carries
// between passes. It stores only plain values (header by value, echo
// identifiers) — never views into the caller's packet bytes — so holding
// metas across passes cannot violate the parser aliasing contracts.
type pktMeta struct {
	hdr     ipv4.Header
	dst     Addr
	route   int32 // index into BatchBuffer.entries, -1 when the IP header is malformed
	tap     int32 // index into the batch tap decision, -1 when not batched
	echoID  uint16
	echoSeq uint16
	ipOK    bool // IPv4 header parsed and carries ICMP
	echoOK  bool // payload parsed as a valid echo request
	ttlDead bool // TTL cannot cover the path; dies before the tap
}

// span locates one packet's reply inside the batch arena; start == end
// marks a timeout (no reply bytes).
type span struct {
	start, end int
}

// BatchBuffer is the reusable state one prober threads through
// DeliverBatch: the route cache, per-packet metadata, the reply arena, and
// the returned Response slice. The zero value is ready to use; everything
// grows to the largest batch seen and is reused afterwards.
//
// A BatchBuffer belongs to exactly one prober (one probing goroutine) and
// to the first Network it is used with. Its lifetime contract extends
// ReplyBuffer's: every Response.Data returned by DeliverBatch is a view
// into the buffer's reply arena, valid only until the next DeliverBatch
// call on the same buffer — callers that retain reply bytes must copy
// them first.
type BatchBuffer struct {
	owner *Network
	gen   uint64

	routes  map[BlockID]int32 // BlockID -> index into entries
	entries []routeEntry

	metas []pktMeta
	resps []Response
	spans []span

	// icmp is the per-packet ICMP-layer scratch (reset per packet, like
	// ReplyBuffer.icmp); arena accumulates every IP-encapsulated reply of
	// the batch so all Responses stay valid together.
	icmp  []byte
	arena []byte

	// Scratch for the one-call-per-batch tap consultation.
	tapDsts     []Addr
	tapTimes    []time.Time
	tapVerdicts []TapVerdict
}

// RetainedBytes reports the heap bytes the buffer retains across calls —
// the per-worker steady-state cost of batched delivery, pinned by the
// monitor's memory-bound test alongside ReplyBuffer.RetainedBytes.
func (b *BatchBuffer) RetainedBytes() int {
	if b == nil {
		return 0
	}
	per := int(0)
	per += cap(b.entries) * (16 + 8 + 8 + 8 + 24) // routeEntry: id+pads, blk, cnt, probes, oc
	per += len(b.routes) * (4 + 4)
	per += cap(b.metas) * 48
	per += cap(b.resps) * 48
	per += cap(b.spans) * 16
	per += cap(b.icmp) + cap(b.arena)
	per += cap(b.tapDsts)*8 + cap(b.tapTimes)*24 + cap(b.tapVerdicts)*8
	return per
}

// routeCacheCap bounds the route cache across batches. Within one batch the
// cache holds at most the batch's distinct destination blocks; across
// batches it would otherwise accumulate every block the prober ever touches
// — O(world), exactly the growth the per-worker memory bound forbids. Once
// it outgrows the cap it is reset at the next batch boundary: correctness
// is untouched (the cache only memoizes lookups) and the steady-state cost
// returns to O(cap). The cap is comfortably above the monitor's batch group
// size, so phases of one wavefront always hit the cache.
const routeCacheCap = 256

// init lazily creates the route cache map so the zero value works.
func (b *BatchBuffer) init() {
	if b.routes == nil {
		//lint:allow hotalloc: one-time lazy init of the route-cache map; warm batches never reach this
		b.routes = make(map[BlockID]int32)
	}
}

// DeliverBatch routes a batch of full IPv4 packets into the simulated edge
// at virtual time now, returning one Response per packet in input order.
// It is exactly equivalent to calling DeliverIPInto(pkts[i], now) for i in
// order (see the package comment above for the determinism argument), but
// resolves routing once per destination block, consults a TapBatch fault
// tap once per batch, evaluates each block's outage schedule once per
// (block, instant), and flushes global and per-block counters once per
// batch.
//
// The returned slice and every Response.Data in it are views into buf,
// valid only until the next DeliverBatch on the same buffer.
//
//lint:hotpath: batched warm-round delivery path, 0 allocs/op pinned by TestDeliverBatchAllocFree
//lint:aliases return: every Response.Data (and the slice itself) is a view into buf's reply arena, valid only until the next DeliverBatch on the same buffer
func (n *Network) DeliverBatch(buf *BatchBuffer, pkts [][]byte, now time.Time) []Response {
	buf.init()

	// Pass 1: parse every packet — IP header by value, echo identity by
	// value — outside any lock. Views into pkts[i] do not outlive the pass.
	buf.metas = buf.metas[:0]
	for _, pkt := range pkts {
		var m pktMeta
		m.route, m.tap = -1, -1
		payload, err := ipv4.ParseHeader(&m.hdr, pkt)
		if err == nil && m.hdr.Protocol == ipv4.ProtoICMP {
			m.ipOK = true
			m.dst = AddrFromIP(m.hdr.Dst)
			var echo icmp.Echo
			if icmp.ParseEchoInto(&echo, payload) == nil && !echo.Reply {
				m.echoOK = true
				m.echoID, m.echoSeq = echo.ID, echo.Seq
			}
		}
		buf.metas = append(buf.metas, m)
	}
	metas := buf.metas

	// Pass 2: resolve routing once per destination block under a single
	// read lock, reusing the cache while the topology generation holds.
	n.mu.RLock()
	if gen := n.gen.Load(); buf.owner != n || buf.gen != gen {
		clear(buf.routes)
		buf.entries = buf.entries[:0]
		buf.owner = n
		buf.gen = gen
	} else if len(buf.entries) > routeCacheCap {
		clear(buf.routes)
		buf.entries = buf.entries[:0]
	}
	tap := n.tap
	newFrom := len(buf.entries)
	for i := range metas {
		m := &metas[i]
		if !m.ipOK {
			continue
		}
		ri, ok := buf.routes[m.dst.Block]
		if !ok {
			blk := n.blocks[m.dst.Block]
			buf.entries = append(buf.entries, routeEntry{
				id:  m.dst.Block,
				blk: blk,
				cnt: n.perBlockProbes[m.dst.Block],
			})
			ri = int32(len(buf.entries) - 1)
			buf.routes[m.dst.Block] = ri
		}
		m.route = ri
		if blk := buf.entries[ri].blk; blk != nil {
			if hops := blk.PathHops(); hops > 0 && int(m.hdr.TTL) <= hops {
				m.ttlDead = true
			}
		}
	}
	n.mu.RUnlock()
	for i := newFrom; i < len(buf.entries); i++ {
		if buf.entries[i].cnt == nil {
			// Unrouted destination: register its counter outside the read
			// lock, exactly as the scalar path's lazy registration does.
			buf.entries[i].cnt = n.registerBlockCounter(buf.entries[i].id)
		}
	}

	// Pass 3: one outbound tap consultation for the whole batch. Only
	// packets the scalar path would consult the tap for participate: an
	// IP-malformed, echo-malformed, or TTL-dead packet never reaches
	// tap.Outbound sequentially, so it must not here either (the tap may
	// keep per-block state, e.g. the fault injector's rate-limit window).
	if tb, ok := tap.(TapBatch); ok {
		buf.tapDsts = buf.tapDsts[:0]
		for i := range metas {
			m := &metas[i]
			if !m.ipOK || !m.echoOK || m.ttlDead {
				continue
			}
			m.tap = int32(len(buf.tapDsts))
			buf.tapDsts = append(buf.tapDsts, m.dst)
		}
		if need := len(buf.tapDsts); need > 0 {
			for len(buf.tapTimes) < need {
				buf.tapTimes = append(buf.tapTimes, time.Time{})
			}
			for len(buf.tapVerdicts) < need {
				buf.tapVerdicts = append(buf.tapVerdicts, TapDeliver)
			}
			tb.OutboundBatch(buf.tapDsts, now, buf.tapTimes[:need], buf.tapVerdicts[:need])
		}
	}

	// Pass 4: deliver in input order through the shared scalar core,
	// appending replies to the arena. Response.Data is recorded as a span
	// because arena growth may move the backing mid-batch.
	var acc statsAcc
	buf.arena = buf.arena[:0]
	buf.resps = buf.resps[:0]
	buf.spans = buf.spans[:0]
	for i := range metas {
		m := &metas[i]
		start := len(buf.arena)
		if !m.ipOK {
			acc.probes++
			acc.malformed++
			buf.resps = append(buf.resps, Response{Timeout: true})
			buf.spans = append(buf.spans, span{start, start})
			continue
		}
		e := &buf.entries[m.route]
		e.probes++
		pkt := pkts[i]
		payload := pkt[ipv4.HeaderLen:m.hdr.TotalLen]
		var echo icmp.Echo
		if m.echoOK {
			// Rebuild the pass-1 parse from recorded identity plus offsets;
			// the payload view is scoped to this iteration.
			echo.ID, echo.Seq = m.echoID, m.echoSeq
			if len(payload) > icmp.EchoHeaderLen {
				echo.Payload = payload[icmp.EchoHeaderLen:]
			}
		}
		var pre tapPre
		if m.tap >= 0 {
			pre = tapPre{t: buf.tapTimes[m.tap], v: buf.tapVerdicts[m.tap], ok: true}
		}
		// deliverCore writes the outcome straight into the appended slot;
		// its Data view is cleared below and re-materialized from the span
		// in pass 5 once the arena has settled.
		buf.resps = append(buf.resps, Response{})
		resp := &buf.resps[len(buf.resps)-1]
		icmpOut, ipOut := n.deliverCore(e.blk, tap, buf.icmp[:0], buf.arena, &m.hdr, m.dst, payload, &echo, m.echoOK, now, pre, &e.oc, &acc, resp)
		buf.icmp = icmpOut
		buf.arena = ipOut
		end := start
		if !resp.Timeout && resp.Data != nil {
			end = len(buf.arena)
		}
		resp.Data = nil
		buf.spans = append(buf.spans, span{start, end})
	}

	// Pass 5: flush counters — one atomic add per global counter and per
	// touched block — and materialize Response.Data views from the settled
	// arena.
	acc.flush(&n.Stats)
	for i := range buf.entries {
		if e := &buf.entries[i]; e.probes != 0 {
			e.cnt.Add(e.probes)
			e.probes = 0
		}
	}
	for i := range buf.spans {
		if sp := buf.spans[i]; sp.end > sp.start {
			buf.resps[i].Data = buf.arena[sp.start:sp.end]
		}
	}
	return buf.resps
}
