package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
)

func at(h, m int) time.Time {
	return simEpoch.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute)
}

func TestBlockIDString(t *testing.T) {
	id := MakeBlockID(1, 9, 21)
	if id.String() != "1.9.21/24" {
		t.Fatalf("String = %q", id.String())
	}
	a := id.Addr(7)
	if a.String() != "1.9.21.7" {
		t.Fatalf("Addr String = %q", a.String())
	}
}

func TestAlwaysOnDead(t *testing.T) {
	if !(AlwaysOn{}).Up(at(3, 0)) || !(AlwaysOn{}).EverActive() {
		t.Fatal("AlwaysOn broken")
	}
	if (Dead{}).Up(at(3, 0)) || (Dead{}).EverActive() {
		t.Fatal("Dead broken")
	}
}

func TestIntermittentRate(t *testing.T) {
	b := Intermittent{P: 0.3, Seed: 42}
	n, up := 5000, 0
	for i := 0; i < n; i++ {
		if b.Up(simEpoch.Add(time.Duration(i) * 660 * time.Second)) {
			up++
		}
	}
	got := float64(up) / float64(n)
	if math.Abs(got-0.3) > 0.03 {
		t.Fatalf("empirical P = %v, want ~0.3", got)
	}
	// Consistency within a quantum.
	t0 := at(5, 3)
	if b.Up(t0) != b.Up(t0.Add(time.Second)) {
		t.Fatal("same-quantum probes must agree")
	}
	if (Intermittent{P: 0}).Up(t0) || (Intermittent{P: 0}).EverActive() {
		t.Fatal("P=0 should be dead")
	}
	if !(Intermittent{P: 1}).Up(t0) {
		t.Fatal("P=1 should always answer")
	}
}

func TestDiurnalBasicSchedule(t *testing.T) {
	// On 09:00–17:00 every day.
	d := Diurnal{Phase: 9 * time.Hour, Duration: 8 * time.Hour, Seed: 1}
	if !d.EverActive() {
		t.Fatal("diurnal should be ever-active")
	}
	cases := []struct {
		h    int
		want bool
	}{{8, false}, {9, true}, {12, true}, {16, true}, {17, false}, {23, false}, {0, false}}
	for _, c := range cases {
		if got := d.Up(at(c.h, 30).Add(-30 * time.Minute)); got != c.want {
			t.Errorf("Up at %02d:00 = %v, want %v", c.h, got, c.want)
		}
	}
	// Same schedule next day.
	if !d.Up(at(24+12, 0)) || d.Up(at(24+20, 0)) {
		t.Fatal("schedule should repeat daily")
	}
}

func TestDiurnalMidnightSpill(t *testing.T) {
	// On 20:00 for 8 hours: up 20:00–04:00 next day.
	d := Diurnal{Phase: 20 * time.Hour, Duration: 8 * time.Hour, Seed: 2}
	if !d.Up(at(21, 0)) {
		t.Fatal("should be up at 21:00")
	}
	if !d.Up(at(27, 0)) { // 03:00 next day
		t.Fatal("should be up at 03:00 next day (spill)")
	}
	if d.Up(at(29, 0)) { // 05:00 next day
		t.Fatal("should be down at 05:00")
	}
}

func TestDiurnalDutyCycleLongRun(t *testing.T) {
	// 8h/day up => availability fraction ~1/3 over many days.
	d := Diurnal{Phase: 6 * time.Hour, Duration: 8 * time.Hour, Seed: 3}
	n, up := 0, 0
	for ti := simEpoch; ti.Before(simEpoch.AddDate(0, 0, 28)); ti = ti.Add(11 * time.Minute) {
		n++
		if d.Up(ti) {
			up++
		}
	}
	got := float64(up) / float64(n)
	if math.Abs(got-1.0/3) > 0.01 {
		t.Fatalf("duty cycle = %v, want ~0.333", got)
	}
}

func TestDiurnalNoiseChangesDays(t *testing.T) {
	d := Diurnal{Phase: 9 * time.Hour, Duration: 8 * time.Hour, StartSigma: 2 * time.Hour, Seed: 4}
	// With 2h start noise, the 09:05 probe outcome should differ across
	// at least some days.
	diff := false
	first := d.Up(at(9, 5))
	for day := 1; day < 30 && !diff; day++ {
		if d.Up(at(24*day+9, 5)) != first {
			diff = true
		}
	}
	if !diff {
		t.Fatal("start noise should perturb the boundary across days")
	}
	// Determinism: same query twice.
	if d.Up(at(9, 5)) != first {
		t.Fatal("behavior must be deterministic")
	}
}

func TestDiurnalUpProb(t *testing.T) {
	d := Diurnal{Phase: 0, Duration: 24 * time.Hour, UpProb: 0.5, Seed: 5}
	n, up := 3000, 0
	for i := 0; i < n; i++ {
		if d.Up(simEpoch.Add(time.Duration(i) * 660 * time.Second)) {
			up++
		}
	}
	got := float64(up) / float64(n)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("UpProb empirical = %v", got)
	}
}

func TestPeriodicBehavior(t *testing.T) {
	// 5.5h period, half duty.
	p := Periodic{Period: 330 * time.Minute, Duty: 0.5}
	if !p.EverActive() {
		t.Fatal("EverActive")
	}
	if !p.Up(simEpoch.Add(10 * time.Minute)) {
		t.Fatal("early phase should be up")
	}
	if p.Up(simEpoch.Add(200 * time.Minute)) {
		t.Fatal("late phase should be down")
	}
	if !p.Up(simEpoch.Add(340 * time.Minute)) {
		t.Fatal("next cycle should be up again")
	}
	if (Periodic{}).Up(simEpoch) || (Periodic{}).EverActive() {
		t.Fatal("zero Periodic should be dead")
	}
	if !(Periodic{Period: time.Hour, Duty: 1}).Up(simEpoch.Add(30 * time.Minute)) {
		t.Fatal("full duty should always be up")
	}
}

func newTestBlock() *Block {
	b := &Block{ID: MakeBlockID(10, 0, 1), Seed: 77}
	for h := 0; h < 42; h++ {
		b.Behaviors[h] = AlwaysOn{}
	}
	for h := 42; h < 100; h++ {
		b.Behaviors[h] = Diurnal{Phase: 9 * time.Hour, Duration: 8 * time.Hour, Seed: uint64(h)}
	}
	return b
}

func TestBlockEverActiveAndTrueA(t *testing.T) {
	b := newTestBlock()
	if got := len(b.EverActive()); got != 100 {
		t.Fatalf("EverActive = %d, want 100", got)
	}
	// At 03:00 only always-on respond: A = 42/100.
	if got := b.TrueA(at(3, 0)); math.Abs(got-0.42) > 1e-9 {
		t.Fatalf("TrueA night = %v, want 0.42", got)
	}
	// At 12:00 everyone responds: A = 1.
	if got := b.TrueA(at(12, 0)); got != 1 {
		t.Fatalf("TrueA noon = %v, want 1", got)
	}
	empty := &Block{ID: MakeBlockID(10, 0, 2)}
	if empty.TrueA(at(0, 0)) != 0 {
		t.Fatal("empty block TrueA should be 0")
	}
}

func TestBlockOutage(t *testing.T) {
	b := newTestBlock()
	b.Outages = []Interval{{Start: at(12, 0), End: at(13, 0)}}
	if !b.InOutage(at(12, 30)) || b.InOutage(at(13, 0)) || b.InOutage(at(11, 59)) {
		t.Fatal("interval containment wrong")
	}
	if got := b.TrueA(at(12, 30)); got != 0 {
		t.Fatalf("TrueA during outage = %v", got)
	}
	if b.RespondsAt(0, at(12, 30)) {
		t.Fatal("no responses during outage")
	}
	row := b.SurveyRow(at(12, 30))
	for h, up := range row {
		if up {
			t.Fatalf("survey row during outage has host %d up", h)
		}
	}
}

func TestSurveyRow(t *testing.T) {
	b := newTestBlock()
	row := b.SurveyRow(at(12, 0))
	for h := 0; h < 100; h++ {
		if !row[h] {
			t.Fatalf("host %d should be up at noon", h)
		}
	}
	for h := 100; h < 256; h++ {
		if row[h] {
			t.Fatalf("host %d should be silent", h)
		}
	}
}

func probeOnce(t *testing.T, n *Network, dst Addr, seq uint16, when time.Time) Response {
	t.Helper()
	pkt, err := (&icmp.Echo{ID: 1, Seq: seq}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return n.Probe(dst, pkt, when)
}

func TestNetworkProbeReply(t *testing.T) {
	n := NewNetwork(1)
	b := newTestBlock()
	b.LatencyBase = 30 * time.Millisecond
	b.LatencyJitter = 10 * time.Millisecond
	n.AddBlock(b)
	resp := probeOnce(t, n, b.ID.Addr(5), 9, at(12, 0))
	if resp.Timeout {
		t.Fatal("always-on host should reply")
	}
	e, err := icmp.ParseEcho(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Matches(1, 9) {
		t.Fatalf("reply = %+v", e)
	}
	if resp.RTT < 30*time.Millisecond || resp.RTT > 40*time.Millisecond {
		t.Fatalf("RTT = %v", resp.RTT)
	}
	if n.Stats.Replies.Load() != 1 {
		t.Fatalf("stats: %s", n.Stats.String())
	}
}

func TestNetworkTimeouts(t *testing.T) {
	n := NewNetwork(1)
	b := newTestBlock()
	n.AddBlock(b)
	// Dead host.
	if resp := probeOnce(t, n, b.ID.Addr(200), 1, at(12, 0)); !resp.Timeout {
		t.Fatal("dead host should time out")
	}
	// Unrouted block.
	if resp := probeOnce(t, n, MakeBlockID(99, 0, 0).Addr(1), 2, at(12, 0)); !resp.Timeout {
		t.Fatal("unrouted block should time out")
	}
	// Diurnal host at night.
	if resp := probeOnce(t, n, b.ID.Addr(50), 3, at(3, 0)); !resp.Timeout {
		t.Fatal("diurnal host at night should time out")
	}
	if resp := probeOnce(t, n, b.ID.Addr(50), 4, at(12, 0)); resp.Timeout {
		t.Fatal("diurnal host at noon should reply")
	}
}

func TestNetworkMalformedDropped(t *testing.T) {
	n := NewNetwork(1)
	b := newTestBlock()
	n.AddBlock(b)
	resp := n.Probe(b.ID.Addr(1), []byte{8, 0, 0}, at(12, 0))
	if !resp.Timeout {
		t.Fatal("malformed probe should time out")
	}
	// Echo replies sent as probes are also dropped.
	rep, _ := (&icmp.Echo{Reply: true, ID: 1, Seq: 1}).Marshal()
	if resp := n.Probe(b.ID.Addr(1), rep, at(12, 0)); !resp.Timeout {
		t.Fatal("reply-as-probe should time out")
	}
	if n.Stats.Malformed.Load() != 2 {
		t.Fatalf("malformed count = %d", n.Stats.Malformed.Load())
	}
}

func TestNetworkLossRate(t *testing.T) {
	n := NewNetwork(2)
	b := &Block{ID: MakeBlockID(10, 1, 0), Loss: 0.25, Seed: 5}
	for h := 0; h < 256; h++ {
		b.Behaviors[h] = AlwaysOn{}
	}
	n.AddBlock(b)
	total, lost := 4000, 0
	for i := 0; i < total; i++ {
		resp := probeOnce(t, n, b.ID.Addr(byte(i)), uint16(i), at(12, 0).Add(time.Duration(i)*time.Second))
		if resp.Timeout {
			lost++
		}
	}
	got := float64(lost) / float64(total)
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("loss rate = %v, want ~0.25", got)
	}
}

func TestNetworkAccounting(t *testing.T) {
	n := NewNetwork(3)
	b := newTestBlock()
	n.AddBlock(b)
	for i := 0; i < 10; i++ {
		probeOnce(t, n, b.ID.Addr(1), uint16(i), at(12, i))
	}
	if got := n.ProbesToBlock(b.ID); got != 10 {
		t.Fatalf("ProbesToBlock = %d", got)
	}
	if got := n.ProbesToBlock(MakeBlockID(1, 2, 3)); got != 0 {
		t.Fatalf("unknown block probes = %d", got)
	}
	if got := ProbeRatePerHour(20, time.Hour); got != 20 {
		t.Fatalf("rate = %v", got)
	}
	if got := ProbeRatePerHour(20, 0); got != 0 {
		t.Fatalf("degenerate rate = %v", got)
	}
	if n.NumBlocks() != 1 || len(n.BlockIDs()) != 1 {
		t.Fatal("topology accessors")
	}
	if n.Block(b.ID) != b || n.Block(MakeBlockID(9, 9, 9)) != nil {
		t.Fatal("Block lookup")
	}
}

func TestDeterminismProperty(t *testing.T) {
	// The same world seed and probe sequence must produce identical
	// outcomes — resumability depends on it.
	f := func(seed uint64) bool {
		run := func() []bool {
			n := NewNetwork(seed)
			b := &Block{ID: MakeBlockID(10, 2, 0), Loss: 0.3, Seed: seed ^ 0xabc}
			for h := 0; h < 64; h++ {
				b.Behaviors[h] = Intermittent{P: 0.6, Seed: seed + uint64(h)}
			}
			n.AddBlock(b)
			var outs []bool
			for i := 0; i < 50; i++ {
				pkt, _ := (&icmp.Echo{ID: 9, Seq: uint16(i)}).Marshal()
				resp := n.Probe(b.ID.Addr(byte(i%64)), pkt, at(0, i))
				outs = append(outs, resp.Timeout)
			}
			return outs
		}
		a, c := run(), run()
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPRFUniformity(t *testing.T) {
	// Rough uniformity check on prfFloat.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += prfFloat(123, uint64(i))
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("prfFloat mean = %v", mean)
	}
}

func TestPRFNormMoments(t *testing.T) {
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := prfNorm(55, uint64(i))
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("prfNorm mean=%v var=%v", mean, variance)
	}
}

func BenchmarkNetworkProbe(b *testing.B) {
	n := NewNetwork(1)
	blk := newTestBlock()
	n.AddBlock(blk)
	pkt, _ := (&icmp.Echo{ID: 1, Seq: 1}).Marshal()
	when := at(12, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Probe(blk.ID.Addr(byte(i)), pkt, when)
	}
}

func BenchmarkTrueA(b *testing.B) {
	blk := newTestBlock()
	when := at(12, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.TrueA(when)
	}
}

func deliverOnce(t *testing.T, n *Network, dst Addr, seq uint16, ttl byte, when time.Time) Response {
	t.Helper()
	echo, err := (&icmp.Echo{ID: 7, Seq: seq}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	hdr := &ipv4.Header{ID: seq, TTL: ttl, Protocol: ipv4.ProtoICMP,
		Src: ipv4.Addr{198, 51, 100, 1}, Dst: ipv4.Addr(dst.IP())}
	pkt, err := hdr.Marshal(echo)
	if err != nil {
		t.Fatal(err)
	}
	return n.DeliverIP(pkt, when)
}

func TestDeliverIPRoundTrip(t *testing.T) {
	n := NewNetwork(1)
	b := newTestBlock()
	n.AddBlock(b)
	resp := deliverOnce(t, n, b.ID.Addr(5), 3, 64, at(12, 0))
	if resp.Timeout {
		t.Fatal("always-on host should reply over IPv4")
	}
	hdr, payload, err := ipv4.Parse(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Src != ipv4.Addr(b.ID.Addr(5).IP()) || hdr.Dst != (ipv4.Addr{198, 51, 100, 1}) {
		t.Fatalf("reply header = %+v", hdr)
	}
	if hdr.TTL == 0 || hdr.TTL >= ipv4.DefaultTTL {
		t.Fatalf("reply TTL = %d, want decremented by path", hdr.TTL)
	}
	e, err := icmp.ParseEcho(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Matches(7, 3) {
		t.Fatalf("inner echo = %+v", e)
	}
}

func TestDeliverIPTTLExpires(t *testing.T) {
	n := NewNetwork(1)
	b := newTestBlock()
	b.Hops = 12
	n.AddBlock(b)
	if resp := deliverOnce(t, n, b.ID.Addr(5), 1, 5, at(12, 0)); !resp.Timeout {
		t.Fatal("TTL 5 must not cover 12 hops")
	}
	if resp := deliverOnce(t, n, b.ID.Addr(5), 2, 13, at(12, 0)); resp.Timeout {
		t.Fatal("TTL 13 covers 12 hops")
	}
}

func TestDeliverIPMalformed(t *testing.T) {
	n := NewNetwork(1)
	b := newTestBlock()
	n.AddBlock(b)
	before := n.Stats.Malformed.Load()
	if resp := n.DeliverIP([]byte{0x45, 0, 0}, at(12, 0)); !resp.Timeout {
		t.Fatal("truncated IPv4 should time out")
	}
	// Wrong protocol.
	hdr := &ipv4.Header{TTL: 64, Protocol: ipv4.ProtoUDP, Dst: ipv4.Addr(b.ID.Addr(1).IP())}
	pkt, _ := hdr.Marshal([]byte("x"))
	if resp := n.DeliverIP(pkt, at(12, 0)); !resp.Timeout {
		t.Fatal("non-ICMP should time out")
	}
	if n.Stats.Malformed.Load() != before+2 {
		t.Fatalf("malformed count = %d", n.Stats.Malformed.Load())
	}
}

func TestPathHops(t *testing.T) {
	b := &Block{ID: MakeBlockID(1, 2, 3)}
	h := b.PathHops()
	if h < 8 || h > 23 {
		t.Fatalf("derived hops = %d", h)
	}
	b.Hops = 3
	if b.PathHops() != 3 {
		t.Fatal("explicit hops should win")
	}
}

func TestAddrIPRoundTrip(t *testing.T) {
	a := MakeBlockID(10, 20, 30).Addr(40)
	if got := AddrFromIP(a.IP()); got != a {
		t.Fatalf("round trip = %v", got)
	}
}

func TestReplyRateLimit(t *testing.T) {
	n := NewNetwork(1)
	b := newTestBlock()
	b.ReplyRateLimit = 10
	n.AddBlock(b)
	replies := 0
	base := at(12, 0)
	for i := 0; i < 30; i++ {
		resp := probeOnce(t, n, b.ID.Addr(byte(i%42)), uint16(i), base.Add(time.Duration(i)*time.Second))
		if !resp.Timeout {
			replies++
		}
	}
	if replies != 10 {
		t.Fatalf("replies = %d, want 10 (rate limited)", replies)
	}
	if n.Stats.RateLimited.Load() != 20 {
		t.Fatalf("rate-limited count = %d", n.Stats.RateLimited.Load())
	}
	// A new minute refills the budget.
	resp := probeOnce(t, n, b.ID.Addr(1), 99, base.Add(61*time.Second))
	if resp.Timeout {
		t.Fatal("budget should refill next minute")
	}
	// Unlimited by default.
	b2 := newTestBlock()
	b2.ID = MakeBlockID(10, 0, 9)
	n.AddBlock(b2)
	for i := 0; i < 50; i++ {
		if resp := probeOnce(t, n, b2.ID.Addr(1), uint16(i), base); resp.Timeout {
			t.Fatal("unlimited block should always reply")
		}
	}
}
