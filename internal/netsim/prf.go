// Package netsim simulates the IPv4 edge the paper measures: /24 blocks of
// addresses with per-address behaviour models (always-on, diurnal with
// phase and noise, intermittent, dead), per-block loss and latency, and
// whole-block outages. Probes enter and leave as marshalled ICMP packets,
// so the measurement pipeline above exercises a real encode/decode path.
//
// All randomness is a pure function of (seed, identifiers, time quantum),
// so a simulation is exactly reproducible and answers are consistent when
// an address is probed twice in the same round — the property that makes
// ground-truth availability well defined.
package netsim

import "math"

// splitmix64 is the finalizing mixer from the SplitMix64 generator; it is
// used as a tiny keyed PRF over packed integer inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// prf hashes the seed and parts into a uniform 64-bit value.
func prf(seed uint64, parts ...uint64) uint64 {
	h := splitmix64(seed)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// prfFloat returns a uniform float64 in [0, 1).
func prfFloat(seed uint64, parts ...uint64) float64 {
	return float64(prf(seed, parts...)>>11) / (1 << 53)
}

// prfNorm returns a standard normal deviate via the Box-Muller transform
// on two independent PRF draws.
func prfNorm(seed uint64, parts ...uint64) float64 {
	u1 := prfFloat(seed^0x5bf0_3635, parts...)
	u2 := prfFloat(seed^0xc2b2_ae35, parts...)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
