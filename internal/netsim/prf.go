// Package netsim simulates the IPv4 edge the paper measures: /24 blocks of
// addresses with per-address behaviour models (always-on, diurnal with
// phase and noise, intermittent, dead), per-block loss and latency, and
// whole-block outages. Probes enter and leave as marshalled ICMP packets,
// so the measurement pipeline above exercises a real encode/decode path.
//
// All randomness is a pure function of (seed, identifiers, time quantum),
// so a simulation is exactly reproducible and answers are consistent when
// an address is probed twice in the same round — the property that makes
// ground-truth availability well defined. The draws themselves come from
// the canonical PRF in internal/prf; these wrappers only keep the local
// names the simulator code reads naturally.
package netsim

import "sleepnet/internal/prf"

// prfFloat returns a uniform float64 in [0, 1).
func prfFloat(seed uint64, parts ...uint64) float64 {
	return prf.Float(seed, parts...)
}

// prfFloat2 and prfFloat3 are the fixed-arity forms for per-probe draws;
// bit-identical to prfFloat with the same parts.
func prfFloat2(seed, a, b uint64) float64 { return prf.Float2(seed, a, b) }

func prfFloat3(seed, a, b, c uint64) float64 { return prf.Float3(seed, a, b, c) }

// prfNorm returns a standard normal deviate.
func prfNorm(seed uint64, parts ...uint64) float64 {
	return prf.Norm(seed, parts...)
}
