package netsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
)

// buildBatchWorld constructs a fresh network exercising every delivery
// branch: plain blocks, loss, latency jitter, outages with gateway
// unreachables, reply rate limits, long paths that kill small TTLs.
// Called once per network under comparison so scalar and batch runs own
// identical but independent state (rate-limit windows, counters).
func buildBatchWorld() *Network {
	n := NewNetwork(42)

	plain := newTestBlock()
	plain.LatencyBase = 25 * time.Millisecond
	plain.LatencyJitter = 10 * time.Millisecond
	n.AddBlock(plain)

	lossy := &Block{ID: MakeBlockID(10, 0, 2), Seed: 5, Loss: 0.3, LatencyBase: 40 * time.Millisecond}
	for h := 0; h < 256; h++ {
		lossy.Behaviors[h] = AlwaysOn{}
	}
	n.AddBlock(lossy)

	outage := &Block{
		ID: MakeBlockID(10, 0, 3), Seed: 9,
		LatencyBase:            15 * time.Millisecond,
		GatewayUnreachableProb: 0.5,
		Outages:                []Interval{{Start: at(11, 0), End: at(13, 0)}},
	}
	for h := 0; h < 128; h++ {
		outage.Behaviors[h] = AlwaysOn{}
	}
	n.AddBlock(outage)

	limited := &Block{ID: MakeBlockID(10, 0, 4), Seed: 13, ReplyRateLimit: 3, LatencyBase: 10 * time.Millisecond}
	for h := 0; h < 256; h++ {
		limited.Behaviors[h] = AlwaysOn{}
	}
	n.AddBlock(limited)

	far := &Block{ID: MakeBlockID(10, 0, 5), Seed: 21, Hops: 40, LatencyBase: 90 * time.Millisecond}
	for h := 0; h < 256; h++ {
		far.Behaviors[h] = AlwaysOn{}
	}
	n.AddBlock(far)

	return n
}

// orderTap is a deliberately stateful TapBatch: outbound verdicts cycle a
// per-block counter, inbound corruption/drops cycle a global counter. Any
// reordering of same-block outbound probes, or of inbound replies overall,
// changes its decisions — which is exactly what the equivalence tests must
// prove batching does not do. (Cross-dependence of Inbound on Outbound
// state is the one thing TapBatch forbids, so there is none here.)
type orderTap struct {
	outCount map[BlockID]int
	inCount  int
}

func newOrderTap() *orderTap { return &orderTap{outCount: make(map[BlockID]int)} }

func (o *orderTap) Outbound(dst Addr, now time.Time) (time.Time, TapVerdict) {
	c := o.outCount[dst.Block]
	o.outCount[dst.Block] = c + 1
	switch c % 5 {
	case 1:
		return now, TapDrop
	case 3:
		return now, TapAdminProhibited
	case 4:
		return now, TapSendError
	}
	// Skew alternate deliveries so delivery-time-dependent draws shift.
	if c%2 == 0 {
		return now.Add(17 * time.Millisecond), TapDeliver
	}
	return now, TapDeliver
}

func (o *orderTap) OutboundBatch(dsts []Addr, now time.Time, times []time.Time, verdicts []TapVerdict) {
	for i, dst := range dsts {
		times[i], verdicts[i] = o.Outbound(dst, now)
	}
}

func (o *orderTap) Inbound(dst Addr, reply []byte, now time.Time) []byte {
	o.inCount++
	switch o.inCount % 7 {
	case 2: // copy-on-corrupt: flip a bit in a fresh slice
		out := append([]byte(nil), reply...)
		out[len(out)/2] ^= 0x40
		return out
	case 5: // drop the reply
		return nil
	}
	return reply
}

// mkBatchPkt marshals one full probe packet.
func mkBatchPkt(t testing.TB, dst Addr, id, seq uint16, ttl byte, payload []byte) []byte {
	t.Helper()
	echo, err := (&icmp.Echo{ID: id, Seq: seq, Payload: payload}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	hdr := &ipv4.Header{ID: seq, TTL: ttl, Protocol: ipv4.ProtoICMP,
		Src: ipv4.Addr{198, 51, 100, 1}, Dst: ipv4.Addr(dst.IP())}
	pkt, err := hdr.Marshal(echo)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// batchSchedule builds one round's worth of packets: several probes per
// block (enough to trip the rate limits), unrouted space, a TTL death, and
// every malformed shape the parser rejects.
func batchSchedule(t testing.TB, r int) [][]byte {
	t.Helper()
	var pkts [][]byte
	blocks := []BlockID{
		MakeBlockID(10, 0, 1), MakeBlockID(10, 0, 2), MakeBlockID(10, 0, 3),
		MakeBlockID(10, 0, 4), MakeBlockID(10, 0, 5),
	}
	seq := uint16(r * 100)
	for i := 0; i < 8; i++ {
		for _, id := range blocks {
			host := byte((i*37 + r) % 120)
			pkts = append(pkts, mkBatchPkt(t, id.Addr(host), 7, seq, 64, []byte("probe-payload")))
			seq++
		}
	}
	// Unrouted space.
	pkts = append(pkts, mkBatchPkt(t, MakeBlockID(99, 9, 9).Addr(1), 7, seq, 64, nil))
	seq++
	// TTL too small for even the shortest derived path.
	pkts = append(pkts, mkBatchPkt(t, blocks[0].Addr(5), 7, seq, 3, nil))
	seq++
	// Malformed: truncated IP header.
	pkts = append(pkts, []byte{0x45, 0, 0})
	// Malformed: non-ICMP protocol.
	udp, err := (&ipv4.Header{TTL: 64, Protocol: ipv4.ProtoUDP, Dst: ipv4.Addr(blocks[0].Addr(1).IP())}).Marshal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	pkts = append(pkts, udp)
	// Malformed: echo reply sent as a probe.
	rep, err := (&icmp.Echo{Reply: true, ID: 7, Seq: seq}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := (&ipv4.Header{TTL: 64, Protocol: ipv4.ProtoICMP, Dst: ipv4.Addr(blocks[1].Addr(2).IP())}).Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	pkts = append(pkts, wrapped)
	// Malformed: echo with a broken checksum.
	bad := mkBatchPkt(t, blocks[2].Addr(3), 7, seq, 64, []byte("zz"))
	bad[len(bad)-1] ^= 0xff
	pkts = append(pkts, bad)
	return pkts
}

// ownedResp deep-copies a Response out of a reused buffer.
func ownedResp(r Response) Response {
	if r.Data != nil {
		r.Data = append([]byte(nil), r.Data...)
	}
	return r
}

// scalarDeliverAll runs the reference path: one DeliverIPInto per packet.
func scalarDeliverAll(n *Network, buf *ReplyBuffer, pkts [][]byte, now time.Time) []Response {
	out := make([]Response, 0, len(pkts))
	for _, pkt := range pkts {
		out = append(out, ownedResp(n.DeliverIPInto(buf, pkt, now)))
	}
	return out
}

func respEqual(a, b Response) bool {
	return a.Timeout == b.Timeout && a.SendFailed == b.SendFailed &&
		a.RTT == b.RTT && bytes.Equal(a.Data, b.Data)
}

// checkNetsEqual compares all observable per-network accounting.
func checkNetsEqual(t *testing.T, scalar, batch *Network) {
	t.Helper()
	s, b := &scalar.Stats, &batch.Stats
	if s.Probes.Load() != b.Probes.Load() || s.Replies.Load() != b.Replies.Load() ||
		s.Timeouts.Load() != b.Timeouts.Load() || s.Lost.Load() != b.Lost.Load() ||
		s.Malformed.Load() != b.Malformed.Load() || s.RateLimited.Load() != b.RateLimited.Load() {
		t.Fatalf("stats diverged:\n scalar %s rate=%d\n batch  %s rate=%d",
			s.String(), s.RateLimited.Load(), b.String(), b.RateLimited.Load())
	}
	for _, id := range scalar.BlockIDs() {
		if sc, bc := scalar.ProbesToBlock(id), batch.ProbesToBlock(id); sc != bc {
			t.Fatalf("block %v probe count: scalar %d batch %d", id, sc, bc)
		}
	}
	if sc, bc := scalar.ProbesToBlock(MakeBlockID(99, 9, 9)), batch.ProbesToBlock(MakeBlockID(99, 9, 9)); sc != bc {
		t.Fatalf("unrouted probe count: scalar %d batch %d", sc, bc)
	}
}

// deliverRounds drives rounds of the schedule through both paths, the
// batch side split into chunks of size chunk (0 = whole round in one
// call), and fails on the first divergent response.
func deliverRounds(t *testing.T, chunk, rounds int, withTap bool) {
	t.Helper()
	scalarNet, batchNet := buildBatchWorld(), buildBatchWorld()
	if withTap {
		scalarNet.SetTap(newOrderTap())
		batchNet.SetTap(newOrderTap())
	}
	var rb ReplyBuffer
	var bb BatchBuffer
	for r := 0; r < rounds; r++ {
		// 40s steps cross rate-limit minute windows mid-sequence; rounds 16+
		// land inside the outage window of block 10.0.3 (11:00–13:00).
		now := at(10, 50).Add(time.Duration(r) * 40 * time.Second)
		pkts := batchSchedule(t, r)
		want := scalarDeliverAll(scalarNet, &rb, pkts, now)
		var got []Response
		for start := 0; start < len(pkts); {
			end := len(pkts)
			if chunk > 0 && start+chunk < end {
				end = start + chunk
			}
			for _, resp := range batchNet.DeliverBatch(&bb, pkts[start:end], now) {
				got = append(got, ownedResp(resp))
			}
			start = end
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d responses, want %d", r, len(got), len(want))
		}
		for i := range want {
			if !respEqual(got[i], want[i]) {
				t.Fatalf("round %d pkt %d diverged:\n scalar %+v\n batch  %+v", r, i, want[i], got[i])
			}
		}
	}
	checkNetsEqual(t, scalarNet, batchNet)
}

func TestDeliverBatchEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		chunk int
		tap   bool
	}{
		{"size1", 1, false},
		{"size7", 7, false},
		{"size64", 64, false},
		{"fullround", 0, false},
		{"size1_tap", 1, true},
		{"size7_tap", 7, true},
		{"size64_tap", 64, true},
		{"fullround_tap", 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) { deliverRounds(t, tc.chunk, 24, tc.tap) })
	}
}

// TestDeliverBatchRandomSplits is the quick property: any partition of a
// round into consecutive DeliverBatch calls yields the scalar byte
// sequence.
func TestDeliverBatchRandomSplits(t *testing.T) {
	prop := func(seed uint64) bool {
		scalarNet, batchNet := buildBatchWorld(), buildBatchWorld()
		scalarNet.SetTap(newOrderTap())
		batchNet.SetTap(newOrderTap())
		var rb ReplyBuffer
		var bb BatchBuffer
		state := seed
		next := func(n int) int { // tiny deterministic LCG over the quick seed
			state = state*6364136223846793005 + 1442695040888963407
			return int(state>>33) % n
		}
		for r := 0; r < 6; r++ {
			now := at(10, 50).Add(time.Duration(r) * 40 * time.Second)
			pkts := batchSchedule(t, r)
			want := scalarDeliverAll(scalarNet, &rb, pkts, now)
			var got []Response
			for start := 0; start < len(pkts); {
				end := start + 1 + next(len(pkts)-start)
				for _, resp := range batchNet.DeliverBatch(&bb, pkts[start:end], now) {
					got = append(got, ownedResp(resp))
				}
				start = end
			}
			for i := range want {
				if !respEqual(got[i], want[i]) {
					t.Logf("seed %d round %d pkt %d diverged", seed, r, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliverBatchTopologyMutation checks the route cache revalidates when
// the topology generation moves: blocks added between batches must be
// visible, and stale cached routes must never be used.
func TestDeliverBatchTopologyMutation(t *testing.T) {
	scalarNet, batchNet := buildBatchWorld(), buildBatchWorld()
	var rb ReplyBuffer
	var bb BatchBuffer
	lateID := MakeBlockID(20, 0, 1)
	mkLate := func() *Block {
		late := &Block{ID: lateID, Seed: 33, LatencyBase: 5 * time.Millisecond}
		for h := 0; h < 16; h++ {
			late.Behaviors[h] = AlwaysOn{}
		}
		return late
	}
	probeLate := func(r int) [][]byte {
		return [][]byte{
			mkBatchPkt(t, lateID.Addr(3), 7, uint16(r), 64, nil),
			mkBatchPkt(t, MakeBlockID(10, 0, 1).Addr(4), 7, uint16(r+1000), 64, nil),
		}
	}
	now := at(12, 0)
	// Round 1: lateID is unrouted — cached as nil route.
	want := scalarDeliverAll(scalarNet, &rb, probeLate(1), now)
	got := batchNet.DeliverBatch(&bb, probeLate(1), now)
	for i := range want {
		if !respEqual(got[i], want[i]) {
			t.Fatalf("pre-mutation pkt %d diverged", i)
		}
	}
	if !want[0].Timeout {
		t.Fatal("unrouted block should time out")
	}
	// Mutate: the block appears.
	scalarNet.AddBlock(mkLate())
	batchNet.AddBlock(mkLate())
	now = now.Add(time.Minute)
	want = scalarDeliverAll(scalarNet, &rb, probeLate(2), now)
	got = batchNet.DeliverBatch(&bb, probeLate(2), now)
	for i := range want {
		if !respEqual(got[i], want[i]) {
			t.Fatalf("post-mutation pkt %d diverged", i)
		}
	}
	if want[0].Timeout {
		t.Fatal("late block should reply after AddBlock")
	}
	checkNetsEqual(t, scalarNet, batchNet)
}

// TestDeliverBatchBufferLifetime pins the arena contract: all responses of
// one batch stay valid together, and the next batch overwrites them.
func TestDeliverBatchBufferLifetime(t *testing.T) {
	n := buildBatchWorld()
	var bb BatchBuffer
	pkts := [][]byte{
		mkBatchPkt(t, MakeBlockID(10, 0, 1).Addr(1), 7, 1, 64, []byte("aaaa")),
		mkBatchPkt(t, MakeBlockID(10, 0, 1).Addr(2), 7, 2, 64, []byte("bbbb")),
		mkBatchPkt(t, MakeBlockID(10, 0, 1).Addr(3), 7, 3, 64, []byte("cccc")),
	}
	resps := n.DeliverBatch(&bb, pkts, at(12, 0))
	copies := make([][]byte, len(resps))
	for i, r := range resps {
		if r.Timeout {
			t.Fatalf("pkt %d timed out", i)
		}
		copies[i] = append([]byte(nil), r.Data...)
	}
	// All views must still match their copies after the whole batch is read.
	for i, r := range resps {
		if !bytes.Equal(r.Data, copies[i]) {
			t.Fatalf("response %d mutated within its batch lifetime", i)
		}
	}
	if bb.RetainedBytes() <= 0 {
		t.Fatal("warm BatchBuffer should report retained bytes")
	}
}

// TestDeliverBatchAllocFree pins the warm-batch budget: after warmup, a
// DeliverBatch round of well-formed probes allocates nothing. (Malformed
// packets are excluded deliberately: parser error construction allocates
// on the scalar path too and is the lint budget's exempt cold path — a
// real prober's warm round sends only packets it marshalled itself.)
func TestDeliverBatchAllocFree(t *testing.T) {
	n := buildBatchWorld()
	var bb BatchBuffer
	var pkts [][]byte
	for i := 0; i < 40; i++ {
		for _, id := range []BlockID{MakeBlockID(10, 0, 1), MakeBlockID(10, 0, 4), MakeBlockID(10, 0, 5), MakeBlockID(99, 9, 9)} {
			pkts = append(pkts, mkBatchPkt(t, id.Addr(byte(i%120)), 7, uint16(i), 64, []byte("probe-payload")))
		}
	}
	now := at(12, 0)
	for i := 0; i < 3; i++ {
		n.DeliverBatch(&bb, pkts, now)
	}
	avg := testing.AllocsPerRun(50, func() {
		n.DeliverBatch(&bb, pkts, now)
	})
	if avg != 0 {
		t.Fatalf("warm DeliverBatch allocates %.1f allocs/op, want 0", avg)
	}
}
