package netsim

import (
	"math"
	"time"
)

// Behavior models how one address responds over time. Implementations must
// be deterministic: two calls with the same time quantum return the same
// answer.
type Behavior interface {
	// Up reports whether the address answers a probe arriving at t.
	Up(t time.Time) bool
	// EverActive reports whether the address responds at least sometimes;
	// never-active addresses are outside E(b) and outside ground-truth A.
	EverActive() bool
}

// simEpoch anchors day and round arithmetic. Any fixed instant works; this
// one matches the A12w collection start date for cosmetic familiarity.
var simEpoch = time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC)

// secondsSinceEpoch converts t to simulation seconds.
func secondsSinceEpoch(t time.Time) float64 {
	return t.Sub(simEpoch).Seconds()
}

// AlwaysOn is an address that answers every probe.
type AlwaysOn struct{}

func (AlwaysOn) Up(time.Time) bool { return true }
func (AlwaysOn) EverActive() bool  { return true }

// Dead is an address that never answers (outside E(b)).
type Dead struct{}

func (Dead) Up(time.Time) bool { return false }
func (Dead) EverActive() bool  { return false }

// Intermittent answers each probing quantum independently with probability
// P — the "dense but low availability" population of Figure 2. Quantum is
// the consistency window; probes within the same quantum get the same
// answer. A zero Quantum defaults to the 11-minute round.
type Intermittent struct {
	P       float64
	Quantum time.Duration
	Seed    uint64
}

func (b Intermittent) quantum() float64 {
	if b.Quantum <= 0 {
		return 660
	}
	return b.Quantum.Seconds()
}

func (b Intermittent) Up(t time.Time) bool {
	if b.P <= 0 {
		return false
	}
	if b.P >= 1 {
		return true
	}
	q := uint64(secondsSinceEpoch(t) / b.quantum())
	return prfFloat(b.Seed, q, 0x1a7e) < b.P
}

func (b Intermittent) EverActive() bool { return b.P > 0 }

// upMemo is Up with the per-quantum draw routed through m. The draw is a
// pure function of (Seed, quantum), so the answer is bit-identical to Up —
// the memo only skips redrawing the same uniform for every probe of the
// same host-quantum.
func (b Intermittent) upMemo(t time.Time, m *hostMemo) bool {
	if b.P <= 0 {
		return false
	}
	if b.P >= 1 {
		return true
	}
	q := uint64(secondsSinceEpoch(t) / b.quantum())
	if !m.qSet || m.q != q {
		m.q, m.qVal, m.qSet = q, prfFloat2(b.Seed, q, 0x1a7e), true
	}
	return m.qVal < b.P
}

// Diurnal answers during one contiguous on-period per day and is silent
// otherwise — the §3.2.2 controlled model. The on-period of day d starts at
// Phase + N(0, StartSigma) after local midnight (all times UTC in the
// simulator; the world layer shifts Phase by longitude) and lasts
// Duration + N(0, DurationSigma), with per-day noise drawn independently
// per address. Periods may spill across midnight.
type Diurnal struct {
	Phase         time.Duration // daily on-period start offset from midnight
	Duration      time.Duration // mean on-period length
	StartSigma    time.Duration // per-day start-time noise (σs)
	DurationSigma time.Duration // per-day duration noise (σd)
	UpProb        float64       // answer probability while on; 0 means 1.0
	Seed          uint64
}

func (b Diurnal) EverActive() bool { return b.Duration > 0 }

func (b Diurnal) Up(t time.Time) bool {
	if b.Duration <= 0 {
		return false
	}
	sec := secondsSinceEpoch(t)
	day := int64(sec) / 86400
	if sec < 0 {
		day--
	}
	// A probe at time t can fall in today's period or the tail of
	// yesterday's period when it spills past midnight.
	if b.inPeriod(sec, day) || b.inPeriod(sec, day-1) {
		if b.UpProb <= 0 || b.UpProb >= 1 {
			return true
		}
		q := uint64(sec / 660)
		return prfFloat(b.Seed, q, 0xd1a2) < b.UpProb
	}
	return false
}

// inPeriod reports whether sec falls within day d's on-period.
func (b Diurnal) inPeriod(sec float64, d int64) bool {
	start, dur := b.bounds(d)
	return sec >= start && sec < start+dur
}

// bounds returns day d's realized on-period (start, dur) after the per-day
// noise draws — a pure function of (Seed, d), which is what makes the
// per-host day memo below exact rather than approximate.
func (b Diurnal) bounds(d int64) (float64, float64) {
	start := float64(d)*86400 + b.Phase.Seconds()
	if b.StartSigma > 0 {
		start += prfNorm(b.Seed, uint64(d), 0x57a7) * b.StartSigma.Seconds()
	}
	dur := b.Duration.Seconds()
	if b.DurationSigma > 0 {
		dur += prfNorm(b.Seed, uint64(d), 0xd0b1) * b.DurationSigma.Seconds()
		if dur < 0 {
			dur = 0
		}
	}
	return start, dur
}

// dayBounds caches one realized on-period so a day's two Box-Muller draws
// happen once per (host, day) instead of once per probe.
type dayBounds struct {
	day   int64
	start float64
	dur   float64
	set   bool
}

// hostMemo caches one host's per-quantum and per-day draws. days holds the
// two day slots a diurnal probe can touch (today and the spillover tail of
// yesterday), indexed day&1 so consecutive days never evict each other
// mid-round; q/qVal cache the newest per-quantum uniform draw (Diurnal's
// UpProb draw or Intermittent's availability draw — a host has exactly one
// behavior, so the slot is never shared).
type hostMemo struct {
	days [2]dayBounds
	q    uint64
	qVal float64
	qSet bool
}

// upMemo is Up with the per-day and per-quantum draws routed through m.
// The cached values are pure functions of (Seed, day) and (Seed, quantum),
// so the answer is bit-identical to Up — the memo only skips recomputing
// the same deviates for every probe of the same host-day or host-quantum.
func (b Diurnal) upMemo(t time.Time, m *hostMemo) bool {
	if b.Duration <= 0 {
		return false
	}
	sec := secondsSinceEpoch(t)
	day := int64(sec) / 86400
	if sec < 0 {
		day--
	}
	if b.inPeriodMemo(sec, day, &m.days[day&1]) || b.inPeriodMemo(sec, day-1, &m.days[(day-1)&1]) {
		if b.UpProb <= 0 || b.UpProb >= 1 {
			return true
		}
		q := uint64(sec / 660)
		if !m.qSet || m.q != q {
			m.q, m.qVal, m.qSet = q, prfFloat2(b.Seed, q, 0xd1a2), true
		}
		return m.qVal < b.UpProb
	}
	return false
}

// inPeriodMemo is inPeriod with day d's bounds cached in s.
func (b Diurnal) inPeriodMemo(sec float64, d int64, s *dayBounds) bool {
	if !s.set || s.day != d {
		s.day = d
		s.start, s.dur = b.bounds(d)
		s.set = true
	}
	return sec >= s.start && sec < s.start+s.dur
}

// Periodic answers during a fraction of every period P — used to model
// non-24h periodicities such as DHCP lease cycles (§4 "Daily or other
// periodicity?").
type Periodic struct {
	Period time.Duration // full cycle length
	Duty   float64       // fraction of the cycle spent up, in (0,1]
	Offset time.Duration // phase offset of the cycle start
}

func (b Periodic) EverActive() bool { return b.Period > 0 && b.Duty > 0 }

func (b Periodic) Up(t time.Time) bool {
	if b.Period <= 0 || b.Duty <= 0 {
		return false
	}
	if b.Duty >= 1 {
		return true
	}
	p := b.Period.Seconds()
	sec := secondsSinceEpoch(t) - b.Offset.Seconds()
	phase := sec - math.Floor(sec/p)*p
	return phase < b.Duty*p
}
