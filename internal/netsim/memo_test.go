package netsim

import (
	"testing"
	"time"
)

// TestHostMemoMatchesUp pins the per-host memo paths to the plain Behavior
// evaluations: for diurnal hosts (with day noise and UpProb) and
// intermittent hosts, upMemo must agree with Up at every instant, including
// out-of-order revisits that force cache churn, times before the epoch, and
// midnight spillover.
func TestHostMemoMatchesUp(t *testing.T) {
	diur := Diurnal{
		Phase:         9 * time.Hour,
		Duration:      10 * time.Hour,
		StartSigma:    45 * time.Minute,
		DurationSigma: 90 * time.Minute,
		UpProb:        0.8,
		Seed:          0xfeed,
	}
	inter := Intermittent{P: 0.6, Seed: 0xbead}
	interQ := Intermittent{P: 0.35, Quantum: 17 * time.Minute, Seed: 0x77}

	var times []time.Time
	base := simEpoch.Add(-36 * time.Hour)
	for i := 0; i < 600; i++ {
		// An irregular stride that crosses quantum and day boundaries.
		times = append(times, base.Add(time.Duration(i)*19*time.Minute))
	}
	// Revisit earlier instants after later ones: the memo slots must
	// recompute, not serve stale entries.
	times = append(times, times[3], times[250], times[10], times[599], times[0])

	var md, mi, mq hostMemo
	for _, tt := range times {
		if got, want := diur.upMemo(tt, &md), diur.Up(tt); got != want {
			t.Fatalf("Diurnal.upMemo(%v) = %v, Up = %v", tt, got, want)
		}
		if got, want := inter.upMemo(tt, &mi), inter.Up(tt); got != want {
			t.Fatalf("Intermittent.upMemo(%v) = %v, Up = %v", tt, got, want)
		}
		if got, want := interQ.upMemo(tt, &mq), interQ.Up(tt); got != want {
			t.Fatalf("Intermittent{Quantum}.upMemo(%v) = %v, Up = %v", tt, got, want)
		}
	}
}
