package netsim

import (
	"fmt"
	"sync"
	"time"
)

// BlockID identifies a /24 prefix by its upper 24 bits; the low byte of the
// packed value is zero. 1.9.21/24 is BlockID(0x01091500).
type BlockID uint32

// MakeBlockID packs the three prefix octets of a /24.
func MakeBlockID(a, b, c byte) BlockID {
	return BlockID(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8)
}

// String renders the prefix as "a.b.c/24".
func (id BlockID) String() string {
	return fmt.Sprintf("%d.%d.%d/24", byte(id>>24), byte(id>>16), byte(id>>8))
}

// Addr returns the full address of host h within the block.
func (id BlockID) Addr(h byte) Addr { return Addr{Block: id, Host: h} }

// Addr is one IPv4 address: a /24 block plus the host octet.
type Addr struct {
	Block BlockID
	Host  byte
}

// String renders the dotted-quad address.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a.Block>>24), byte(a.Block>>16), byte(a.Block>>8), a.Host)
}

// key packs the address for PRF use.
func (a Addr) key() uint64 { return uint64(a.Block) | uint64(a.Host) }

// IP returns the address as four octets (for IPv4 encapsulation).
func (a Addr) IP() [4]byte {
	return [4]byte{byte(a.Block >> 24), byte(a.Block >> 16), byte(a.Block >> 8), a.Host}
}

// AddrFromIP converts four octets into an Addr.
func AddrFromIP(ip [4]byte) Addr {
	return Addr{Block: MakeBlockID(ip[0], ip[1], ip[2]), Host: ip[3]}
}

// Interval is a half-open time span [Start, End).
type Interval struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Block is one simulated /24: 256 address behaviours plus path
// characteristics and an outage schedule.
type Block struct {
	ID BlockID
	// Behaviors maps host octet to behaviour; nil entries never respond.
	Behaviors [256]Behavior
	// Loss is the probability a probe or its reply is lost in transit
	// (applied once per round trip).
	Loss float64
	// LatencyBase and LatencyJitter shape the reported round-trip time.
	LatencyBase   time.Duration
	LatencyJitter time.Duration
	// Outages lists spans when the whole block is unreachable.
	Outages []Interval
	// Hops is the path length from the vantage point; zero derives a
	// deterministic 8..23 from the block id. Probes whose IPv4 TTL cannot
	// cover the path die in transit.
	Hops int
	// ReplyRateLimit caps ICMP replies per minute for the whole block
	// (real gateways rate-limit echo responses); zero means unlimited.
	ReplyRateLimit int
	// GatewayUnreachableProb is the probability that, while the block is
	// in an outage, an upstream gateway answers a probe with an ICMP
	// destination-unreachable instead of silence — a negative-but-
	// informative answer, unlike a timeout.
	GatewayUnreachableProb float64
	// Seed decorrelates this block's loss/latency draws from other blocks.
	Seed uint64

	rl rateLimitState
	// dmemo caches per-host day bounds and quantum draws (allocated at
	// AddBlock when any host is Diurnal or Intermittent). Like rl, it
	// mutates on the delivery path and relies on the existing invariant
	// that one block is probed by at most one goroutine at a time.
	dmemo *[256]hostMemo
	// hops caches the effective path length (set by AddBlock), so the
	// per-packet TTL check does not rederive it. Zero means "not yet
	// registered": PathHops falls back to the live computation.
	hops int
}

// hostUp evaluates host's behavior at now, routing Diurnal and
// Intermittent draws through the block's per-host memo when present —
// bit-identical to bh.Up(now), minus the repeated per-day normal deviates
// and per-quantum uniforms.
func (b *Block) hostUp(host byte, bh Behavior, now time.Time) bool {
	if b.dmemo != nil {
		switch d := bh.(type) {
		case Diurnal:
			return d.upMemo(now, &b.dmemo[host])
		case Intermittent:
			return d.upMemo(now, &b.dmemo[host])
		}
	}
	return bh.Up(now)
}

// rateLimitState tracks the per-minute reply budget.
type rateLimitState struct {
	mu     sync.Mutex
	window int64
	count  int
}

// allowReply charges one reply against the block's per-minute budget.
func (b *Block) allowReply(t time.Time) bool {
	if b.ReplyRateLimit <= 0 {
		return true
	}
	w := t.Unix() / 60
	b.rl.mu.Lock()
	defer b.rl.mu.Unlock()
	if w != b.rl.window {
		b.rl.window = w
		b.rl.count = 0
	}
	if b.rl.count >= b.ReplyRateLimit {
		return false
	}
	b.rl.count++
	return true
}

// PathHops returns the effective hop count.
func (b *Block) PathHops() int {
	if b.hops != 0 {
		return b.hops
	}
	if b.Hops > 0 {
		return b.Hops
	}
	return 8 + int(uint64(b.ID)>>8%16)
}

// InOutage reports whether the block is down at t.
func (b *Block) InOutage(t time.Time) bool {
	for _, iv := range b.Outages {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// EverActive returns the host octets whose behaviour ever responds — the
// E(b) set that ground truth availability and Trinocular's address walk are
// defined over.
func (b *Block) EverActive() []byte {
	var out []byte
	for h := 0; h < 256; h++ {
		if bh := b.Behaviors[h]; bh != nil && bh.EverActive() {
			out = append(out, byte(h))
		}
	}
	return out
}

// RespondsAt reports whether host h answers a probe at t, accounting for
// block outages but not path loss.
func (b *Block) RespondsAt(h byte, t time.Time) bool {
	bh := b.Behaviors[h]
	if bh == nil || b.InOutage(t) {
		return false
	}
	return bh.Up(t)
}

// TrueA returns ground-truth availability at t: the fraction of E(b)
// answering, as a survey probing every address would measure. Blocks with
// empty E(b) report 0.
func (b *Block) TrueA(t time.Time) float64 {
	ever := 0
	up := 0
	down := b.InOutage(t)
	for h := 0; h < 256; h++ {
		bh := b.Behaviors[h]
		if bh == nil || !bh.EverActive() {
			continue
		}
		ever++
		if !down && bh.Up(t) {
			up++
		}
	}
	if ever == 0 {
		return 0
	}
	return float64(up) / float64(ever)
}

// SurveyRow records every address's response at one instant — one row of
// the survey strip charts at the top of Figures 1–3.
func (b *Block) SurveyRow(t time.Time) [256]bool {
	var row [256]bool
	if b.InOutage(t) {
		return row
	}
	for h := 0; h < 256; h++ {
		if bh := b.Behaviors[h]; bh != nil && bh.Up(t) {
			row[h] = true
		}
	}
	return row
}
