package geo

import (
	"math"
	"testing"

	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

func TestBuildAndLookup(t *testing.T) {
	entries := []Entry{
		{ID: netsim.MakeBlockID(2, 0, 0), Lat: 10, Lon: 20, Country: "AA"},
		{ID: netsim.MakeBlockID(1, 0, 0), Lat: -5, Lon: 30, Country: "BB"},
	}
	db := Build(entries)
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	e, ok := db.Lookup(netsim.MakeBlockID(1, 0, 0))
	if !ok || e.Country != "BB" || e.Lat != -5 {
		t.Fatalf("lookup = %+v %v", e, ok)
	}
	if _, ok := db.Lookup(netsim.MakeBlockID(9, 9, 9)); ok {
		t.Fatal("missing block should not resolve")
	}
}

func TestFromWorldCoverage(t *testing.T) {
	w, err := world.Generate(world.Config{Blocks: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	db := FromWorld(w, 0.93, 5)
	frac := float64(db.Len()) / float64(len(w.Blocks))
	if math.Abs(frac-0.93) > 0.02 {
		t.Fatalf("coverage = %v, want ~0.93", frac)
	}
	// Full coverage.
	full := FromWorld(w, 1, 5)
	if full.Len() != len(w.Blocks) {
		t.Fatalf("full coverage = %d of %d", full.Len(), len(w.Blocks))
	}
	// Entries agree with ground truth.
	for _, b := range w.Blocks[:50] {
		e, ok := full.Lookup(b.ID)
		if !ok {
			t.Fatalf("block %s missing at full coverage", b.ID)
		}
		if e.Country != b.Country.Code || e.Lat != b.Lat || e.Lon != b.Lon {
			t.Fatalf("entry %+v != block %+v", e, b)
		}
	}
	// Default coverage when 0 passed.
	def := FromWorld(w, 0, 5)
	if math.Abs(float64(def.Len())/float64(len(w.Blocks))-0.93) > 0.02 {
		t.Fatal("default coverage should be 0.93")
	}
}

func TestGridBasics(t *testing.T) {
	g, err := NewGrid(2)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := g.Dims()
	if nx != 180 || ny != 90 {
		t.Fatalf("dims = %d x %d", nx, ny)
	}
	g.Add(34.0, -118.2, true)  // Los Angeles, diurnal
	g.Add(34.5, -118.9, false) // same 2x2 cell
	g.Add(35.6, 139.7, false)  // Tokyo
	if got := g.CountAt(34.3, -118.5); got != 2 {
		t.Fatalf("LA cell count = %d", got)
	}
	if got := g.FractionAt(34.3, -118.5); got != 0.5 {
		t.Fatalf("LA cell fraction = %v", got)
	}
	if got := g.CountAt(35.6, 139.7); got != 1 {
		t.Fatalf("Tokyo cell = %d", got)
	}
	if !math.IsNaN(g.FractionAt(0, 0)) {
		t.Fatal("empty cell fraction should be NaN")
	}
	if g.NonEmptyCells() != 2 {
		t.Fatalf("non-empty cells = %d", g.NonEmptyCells())
	}
	if g.MaxCount() != 2 {
		t.Fatalf("MaxCount = %d", g.MaxCount())
	}
	cells := g.Cells()
	if len(cells) != 2 {
		t.Fatalf("Cells = %d", len(cells))
	}
	// LA cell center: lon bucket of -118.2 -> [-120,-118) center -119.
	if cells[0].LonCenter != -119 && cells[1].LonCenter != -119 {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestGridEdgeClamping(t *testing.T) {
	g, err := NewGrid(2)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly on the antimeridian and poles must not panic.
	g.Add(90, 180, false)
	g.Add(-90, -180, false)
	g.Add(91, 181, false) // out of range clamps
	if g.NonEmptyCells() != 2 {
		t.Fatalf("cells = %d", g.NonEmptyCells())
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(0); err == nil {
		t.Fatal("zero cell should error")
	}
	if _, err := NewGrid(120); err == nil {
		t.Fatal("oversize cell should error")
	}
}

func TestGridCentroidAnomalyVisible(t *testing.T) {
	// Country-centroid blocks pile into one cell: the Fig 12 artifact.
	w, err := world.Generate(world.Config{Blocks: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(2)
	if err != nil {
		t.Fatal(err)
	}
	db := FromWorld(w, 1, 1)
	us := world.CountryByCode("US")
	for _, b := range w.Blocks {
		e, ok := db.Lookup(b.ID)
		if !ok {
			continue
		}
		g.Add(e.Lat, e.Lon, false)
	}
	// The US centroid cell should be disproportionately full relative to a
	// typical uniformly-populated US cell (~7% of ~1400 US blocks pile onto
	// one cell).
	centroidCount := g.CountAt(us.CenterLat(), us.CenterLon())
	if centroidCount < 30 {
		t.Fatalf("centroid cell only has %d blocks", centroidCount)
	}
}
