// Package geo is the geolocation substrate: a MaxMind-style database
// mapping /24 blocks to (latitude, longitude, country), with the two
// imperfections the paper calls out — incomplete coverage (93% of blocks
// geolocate) and country-centroid placement when only the country is known
// (the Fig 12 anomaly) — plus the 2°x2° world-grid aggregation behind
// Figures 12 and 13.
package geo

import (
	"fmt"
	"math"
	"sort"

	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

// Entry is one database record.
type Entry struct {
	ID      netsim.BlockID
	Lat     float64
	Lon     float64
	Country string // ISO code
	// CountryOnly marks records whose coordinates are the country centroid.
	CountryOnly bool
}

// DB is an immutable, sorted block-to-location database.
type DB struct {
	entries []Entry // sorted by ID
}

// Build creates a database from entries (copied and sorted).
func Build(entries []Entry) *DB {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return &DB{entries: es}
}

// Len returns the number of records.
func (db *DB) Len() int { return len(db.entries) }

// Lookup finds the record for a block.
func (db *DB) Lookup(id netsim.BlockID) (Entry, bool) {
	i := sort.Search(len(db.entries), func(i int) bool { return db.entries[i].ID >= id })
	if i < len(db.entries) && db.entries[i].ID == id {
		return db.entries[i], true
	}
	return Entry{}, false
}

// FromWorld derives the geolocation database the measurement side consumes
// from ground truth, keeping only a coverage fraction of blocks (the paper
// geolocates 93%). Which blocks are dropped is deterministic in the seed.
func FromWorld(w *world.World, coverage float64, seed uint64) *DB {
	if coverage <= 0 {
		coverage = 0.93
	}
	if coverage > 1 {
		coverage = 1
	}
	entries := make([]Entry, 0, len(w.Blocks))
	for _, b := range w.Blocks {
		if hashUnit(seed, uint64(b.ID)) >= coverage {
			continue
		}
		entries = append(entries, Entry{
			ID:          b.ID,
			Lat:         b.Lat,
			Lon:         b.Lon,
			Country:     b.Country.Code,
			CountryOnly: b.CountryCentroid,
		})
	}
	return Build(entries)
}

func hashUnit(seed uint64, x uint64) float64 {
	h := seed + 0x9e3779b97f4a7c15
	mix := func(v uint64) uint64 {
		v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		return v ^ (v >> 31)
	}
	h = mix(mix(h) ^ x)
	return float64(h>>11) / (1 << 53)
}

// Grid aggregates blocks on a regular latitude/longitude grid.
type Grid struct {
	CellDeg float64
	nx, ny  int
	total   []int // per cell
	marked  []int // per cell (e.g. diurnal)
}

// NewGrid creates a world-spanning grid with square cells of cellDeg
// degrees (the paper uses 2).
func NewGrid(cellDeg float64) (*Grid, error) {
	if cellDeg <= 0 || cellDeg > 90 {
		return nil, fmt.Errorf("geo: bad cell size %v", cellDeg)
	}
	nx := int(math.Ceil(360 / cellDeg))
	ny := int(math.Ceil(180 / cellDeg))
	return &Grid{CellDeg: cellDeg, nx: nx, ny: ny,
		total:  make([]int, nx*ny),
		marked: make([]int, nx*ny),
	}, nil
}

// Dims returns the grid dimensions (cells in longitude, latitude).
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// cellIndex maps coordinates to a cell, clamping the poles/antimeridian.
func (g *Grid) cellIndex(lat, lon float64) int {
	x := int((lon + 180) / g.CellDeg)
	y := int((lat + 90) / g.CellDeg)
	if x < 0 {
		x = 0
	}
	if x >= g.nx {
		x = g.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.ny {
		y = g.ny - 1
	}
	return y*g.nx + x
}

// Add records a block at (lat, lon); marked flags membership in the
// highlighted class (diurnal, for Fig 13).
func (g *Grid) Add(lat, lon float64, marked bool) {
	i := g.cellIndex(lat, lon)
	g.total[i]++
	if marked {
		g.marked[i]++
	}
}

// CountAt returns total blocks in the cell containing (lat, lon).
func (g *Grid) CountAt(lat, lon float64) int { return g.total[g.cellIndex(lat, lon)] }

// FractionAt returns the marked fraction in the cell containing (lat, lon),
// or NaN for empty cells.
func (g *Grid) FractionAt(lat, lon float64) float64 {
	i := g.cellIndex(lat, lon)
	if g.total[i] == 0 {
		return math.NaN()
	}
	return float64(g.marked[i]) / float64(g.total[i])
}

// NonEmptyCells returns how many cells contain at least one block.
func (g *Grid) NonEmptyCells() int {
	n := 0
	for _, c := range g.total {
		if c > 0 {
			n++
		}
	}
	return n
}

// MaxCount returns the largest per-cell count (grayscale normalization for
// Fig 12).
func (g *Grid) MaxCount() int {
	m := 0
	for _, c := range g.total {
		if c > m {
			m = c
		}
	}
	return m
}

// CellSummary describes one non-empty cell.
type CellSummary struct {
	LatCenter, LonCenter float64
	Total, Marked        int
}

// Cells lists all non-empty cells, west-to-east then south-to-north.
func (g *Grid) Cells() []CellSummary {
	var out []CellSummary
	for y := 0; y < g.ny; y++ {
		for x := 0; x < g.nx; x++ {
			i := y*g.nx + x
			if g.total[i] == 0 {
				continue
			}
			out = append(out, CellSummary{
				LonCenter: -180 + (float64(x)+0.5)*g.CellDeg,
				LatCenter: -90 + (float64(y)+0.5)*g.CellDeg,
				Total:     g.total[i],
				Marked:    g.marked[i],
			})
		}
	}
	return out
}
