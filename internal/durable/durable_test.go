package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failFsync arms the package fsync seam to fail after n successful calls,
// restoring the real fsync when the test ends.
func failFsync(t *testing.T, n int, err error) {
	t.Helper()
	real := fsync
	calls := 0
	fsync = func(f *os.File) error {
		calls++
		if calls > n {
			return err
		}
		return real(f)
	}
	t.Cleanup(func() { fsync = real })
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("read %q, want v1", got)
	}

	// Overwrite: the new content replaces the old atomically.
	if err := WriteFileAtomic(path, []byte("v2 longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2 longer" {
		t.Fatalf("read %q, want v2 longer", got)
	}

	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived: %v", err)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("want error for missing parent directory")
	}
}

func TestWriteFileAtomicFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("disk on fire")
	failFsync(t, 0, injected)
	err := WriteFileAtomic(path, []byte("new"), 0o644)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected fsync failure", err)
	}

	// The contract after a failure: old content intact, no temp husk.
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "old" {
		t.Fatalf("read %q, %v — old content not preserved", got, rerr)
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatalf("temp file survived the failed write: %v", serr)
	}
}

func TestWriteFileAtomicDirFsyncFailure(t *testing.T) {
	// The first fsync (temp file) succeeds; the second (parent directory)
	// fails. The rename has already happened, so the new content is at path,
	// but the caller must still see the error — durability was not achieved.
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	injected := errors.New("dir sync refused")
	failFsync(t, 1, injected)
	if err := WriteFileAtomic(path, []byte("x"), 0o644); !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected dir-fsync failure", err)
	}
}

func TestSyncDirFailureNamesDir(t *testing.T) {
	dir := t.TempDir()
	injected := errors.New("no barriers here")
	failFsync(t, 0, injected)
	err := SyncDir(dir)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error %q does not name the directory", err)
	}
}

func TestWriteFileAtomicReclaimsZeroLengthTemp(t *testing.T) {
	// A crash between temp-create and write leaves a zero-length .tmp husk.
	// The next write must truncate through it and succeed, not refuse or
	// rename the husk into place.
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := os.WriteFile(path+".tmp", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("fresh"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "fresh" {
		t.Fatalf("read %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("husk survived: %v", err)
	}
}

func TestRenameOntoExisting(t *testing.T) {
	// Sealing a segment over a leftover from an earlier crash must replace
	// it — POSIX rename semantics, made durable.
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "seg.open")
	newPath := filepath.Join(dir, "seg.wal")
	if err := os.WriteFile(oldPath, []byte("current"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte("stale leftover"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rename(oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(newPath)
	if err != nil || string(got) != "current" {
		t.Fatalf("read %q, %v", got, err)
	}
	if _, err := os.Stat(oldPath); !os.IsNotExist(err) {
		t.Fatalf("source survived: %v", err)
	}
}

func TestRenameDurable(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "seg.open")
	newPath := filepath.Join(dir, "seg.wal")
	if err := os.WriteFile(oldPath, []byte("records"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rename(oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldPath); !os.IsNotExist(err) {
		t.Fatalf("old path survived: %v", err)
	}
	got, err := os.ReadFile(newPath)
	if err != nil || string(got) != "records" {
		t.Fatalf("read %q, %v", got, err)
	}
}
