package durable

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("read %q, want v1", got)
	}

	// Overwrite: the new content replaces the old atomically.
	if err := WriteFileAtomic(path, []byte("v2 longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2 longer" {
		t.Fatalf("read %q, want v2 longer", got)
	}

	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived: %v", err)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("want error for missing parent directory")
	}
}

func TestRenameDurable(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "seg.open")
	newPath := filepath.Join(dir, "seg.wal")
	if err := os.WriteFile(oldPath, []byte("records"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rename(oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldPath); !os.IsNotExist(err) {
		t.Fatalf("old path survived: %v", err)
	}
	got, err := os.ReadFile(newPath)
	if err != nil || string(got) != "records" {
		t.Fatalf("read %q, %v", got, err)
	}
}
