// Package durable implements the crash-safe file primitives the
// checkpoint and write-ahead-log layers share: write-to-temp + fsync +
// atomic rename, and directory fsync so the rename itself survives a power
// cut. The contract is the standard one: after WriteFileAtomic returns nil,
// a crash at any point leaves either the complete old content or the
// complete new content at path — never a torn mix, never a missing file
// where one existed.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// fsync is the seam through which every durability barrier in this package
// runs. Production always points it at (*os.File).Sync; tests swap it to
// exercise the fsync-failure paths, which no real filesystem will produce
// on demand.
var fsync = (*os.File).Sync

// WriteFileAtomic writes data to path crash-safely: the bytes go to a
// sibling temp file, are fsynced, and are renamed over path; the parent
// directory is then fsynced so the rename is durable. The temp file is
// removed on any failure.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // best effort: the write error is the one to surface
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if err := fsync(f); err != nil {
		_ = f.Close() // best effort: the sync error is the one to surface
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a preceding create, rename, or remove in it
// is durable. Some filesystems reject fsync on directories; that is
// reported as an error rather than ignored, so callers on such filesystems
// make an explicit decision instead of silently losing durability.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := fsync(d); err != nil {
		_ = d.Close() // best effort: the sync error is the one to surface
		return fmt.Errorf("durable: sync %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Rename renames old to new and fsyncs the destination directory, making
// the rename durable — the segment-seal primitive of the write-ahead log.
func Rename(oldPath, newPath string) error {
	if err := os.Rename(oldPath, newPath); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return SyncDir(filepath.Dir(newPath))
}
