package serve

// epoch.go — the immutable read-side snapshot. An Epoch is sealed once (all
// columns copied, classification attached) and then only ever read, so
// every query method is safe for unbounded concurrency with zero locks.
// Aggregations take a context and poll it on a fixed stride: a request
// deadline cuts a full-world rollup off mid-scan with a typed error instead
// of either ignoring the deadline or returning a partial result.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sleepnet/internal/netsim"
)

// ctxStride is how many blocks an aggregation scans between context polls —
// large enough to keep the poll off the profile, small enough that a
// deadline lands within microseconds.
const ctxStride = 8192

// Epoch is one sealed copy-on-write snapshot of the monitored world.
type Epoch struct {
	// Rounds is the epoch's floor: every block reflects at least this many
	// committed rounds (quarantined shards are frozen below it).
	Rounds int
	// MaxRounds is the most advanced shard's committed round count at seal
	// time; per-block freshness lies in [Rounds, MaxRounds].
	MaxRounds int
	// TotalRounds is the campaign length.
	TotalRounds int
	// Time is the virtual timestamp of round Rounds-1.
	Time time.Time
	// Start is the campaign's virtual epoch.
	Start time.Time

	ids      []netsim.BlockID
	avail    []float64
	long     []float64
	down     []bool
	failed   []int32
	class    []DiurnalClass
	phase    []float64
	peakUTC  []float64
	sleepUTC []float64

	// acc carries the accumulator copies from seal to classification and is
	// dropped afterwards.
	acc         []StreamAcc
	minClassify int
}

// BlockStatus is one block's queryable state.
type BlockStatus struct {
	ID    string  `json:"id"`
	Avail float64 `json:"avail"`
	Long  float64 `json:"long"`
	Down  bool    `json:"down"`
	// FailedRounds counts rounds with no usable observation.
	FailedRounds int `json:"failed_rounds,omitempty"`
	// Class is the streaming diurnal class: unknown, non-diurnal, relaxed,
	// or strict.
	Class string `json:"class"`
	// Phase, PeakUTCHour, SleepUTCHour are present for diurnal blocks only.
	Phase        *float64 `json:"phase,omitempty"`
	PeakUTCHour  *float64 `json:"peak_utc_hour,omitempty"`
	SleepUTCHour *float64 `json:"sleep_utc_hour,omitempty"`
}

// Len reports the number of blocks in the epoch.
func (ep *Epoch) Len() int { return len(ep.ids) }

// statusAt builds the exported view of block i.
func (ep *Epoch) statusAt(i int) BlockStatus {
	s := BlockStatus{
		ID:           ep.ids[i].String(),
		Avail:        ep.avail[i],
		Long:         ep.long[i],
		Down:         ep.down[i],
		FailedRounds: int(ep.failed[i]),
		Class:        ep.class[i].String(),
	}
	if c := ep.class[i]; c == ClassStrict || c == ClassRelaxed {
		phase, peak, sleep := ep.phase[i], ep.peakUTC[i], ep.sleepUTC[i]
		s.Phase, s.PeakUTCHour, s.SleepUTCHour = &phase, &peak, &sleep
	}
	return s
}

// Lookup finds one block by id (binary search over the sorted column).
func (ep *Epoch) Lookup(id netsim.BlockID) (BlockStatus, bool) {
	i := sort.Search(len(ep.ids), func(j int) bool { return ep.ids[j] >= id })
	if i >= len(ep.ids) || ep.ids[i] != id {
		return BlockStatus{}, false
	}
	return ep.statusAt(i), true
}

// Summary is the full-world rollup.
type Summary struct {
	Blocks int `json:"blocks"`
	// Epoch is the snapshot's round floor; Time its virtual timestamp.
	Epoch int       `json:"epoch"`
	Time  time.Time `json:"time"`
	Down  int       `json:"down"`
	// MeanAvail is the mean short-term availability across blocks.
	MeanAvail float64 `json:"mean_avail"`
	// Class counts from the streaming detector.
	Unknown    int `json:"unknown"`
	NonDiurnal int `json:"non_diurnal"`
	Relaxed    int `json:"relaxed"`
	Strict     int `json:"strict"`
	// FailedRounds sums failed rounds across blocks.
	FailedRounds int `json:"failed_rounds"`
}

// Summary computes the full-world rollup, aborting with the context's error
// if the deadline lands mid-scan.
func (ep *Epoch) Summary(ctx context.Context) (Summary, error) {
	s := Summary{Blocks: len(ep.ids), Epoch: ep.Rounds, Time: ep.Time}
	sum := 0.0
	for i := range ep.ids {
		if i%ctxStride == 0 && ctx.Err() != nil {
			return Summary{}, fmt.Errorf("serve: summary aborted: %w", ctx.Err())
		}
		sum += ep.avail[i]
		if ep.down[i] {
			s.Down++
		}
		s.FailedRounds += int(ep.failed[i])
		switch ep.class[i] {
		case ClassStrict:
			s.Strict++
		case ClassRelaxed:
			s.Relaxed++
		case ClassNonDiurnal:
			s.NonDiurnal++
		default:
			s.Unknown++
		}
	}
	if s.Blocks > 0 {
		s.MeanAvail = sum / float64(s.Blocks)
	}
	return s, nil
}

// Range collects up to limit blocks with id in [lo, hi), optionally only
// those currently down. Truncated reports that more matches existed beyond
// the limit. The scan polls ctx like Summary.
func (ep *Epoch) Range(ctx context.Context, lo, hi netsim.BlockID, limit int, onlyDown bool) (out []BlockStatus, truncated bool, err error) {
	start := sort.Search(len(ep.ids), func(j int) bool { return ep.ids[j] >= lo })
	for i := start; i < len(ep.ids) && ep.ids[i] < hi; i++ {
		if (i-start)%ctxStride == 0 && ctx.Err() != nil {
			return nil, false, fmt.Errorf("serve: range aborted: %w", ctx.Err())
		}
		if onlyDown && !ep.down[i] {
			continue
		}
		if len(out) >= limit {
			return out, true, nil
		}
		out = append(out, ep.statusAt(i))
	}
	return out, false, nil
}
