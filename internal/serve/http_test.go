package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// fixedNow freezes the admission clock so bucket refill is deterministic.
func fixedNow() func() time.Time {
	t0 := testEpoch
	return func() time.Time { return t0 }
}

func get(t *testing.T, s *Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
	return w
}

// decode asserts the body is one complete JSON document.
func decode(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	dec := json.NewDecoder(w.Body)
	if err := dec.Decode(v); err != nil {
		t.Fatalf("response body is not valid JSON: %v", err)
	}
	if dec.More() {
		t.Fatal("response body has trailing data")
	}
}

// downServer wires a server over the downEngine fixture.
func downServer(blocks int, cfg ServerConfig) *Server {
	if cfg.Now == nil {
		cfg.Now = fixedNow()
	}
	return NewServer(downEngine(blocks), cfg)
}

func TestHTTPBlockLookup(t *testing.T) {
	s := downServer(10, ServerConfig{})

	w := get(t, s, "/v1/block/10.0.2")
	if w.Code != 200 {
		t.Fatalf("code = %d body=%s", w.Code, w.Body)
	}
	var bs BlockStatus
	decode(t, w, &bs)
	if bs.ID != "10.0.2/24" || !bs.Down {
		t.Fatalf("block = %+v", bs)
	}
	if got := w.Header().Get(HeaderEpoch); got != "2" {
		t.Fatalf("%s = %q, want 2", HeaderEpoch, got)
	}

	w = get(t, s, "/v1/block/99.99.99")
	if w.Code != 404 {
		t.Fatalf("missing block code = %d", w.Code)
	}
	var eb errorBody
	decode(t, w, &eb)
	if eb.Error == "" {
		t.Fatal("404 carries no error document")
	}

	w = get(t, s, "/v1/block/not-a-block")
	if w.Code != 400 {
		t.Fatalf("malformed id code = %d", w.Code)
	}
}

func TestHTTPBlocksAndSummary(t *testing.T) {
	s := downServer(10, ServerConfig{})

	w := get(t, s, "/v1/blocks?down=true&limit=3")
	if w.Code != 200 {
		t.Fatalf("code = %d body=%s", w.Code, w.Body)
	}
	var bb blocksBody
	decode(t, w, &bb)
	if len(bb.Blocks) != 3 || !bb.Truncated || bb.Epoch != 2 {
		t.Fatalf("listing = truncated=%v epoch=%d n=%d", bb.Truncated, bb.Epoch, len(bb.Blocks))
	}

	w = get(t, s, "/v1/summary")
	if w.Code != 200 {
		t.Fatalf("summary code = %d", w.Code)
	}
	var sum Summary
	decode(t, w, &sum)
	if sum.Blocks != 10 || sum.Down != 5 {
		t.Fatalf("summary = %+v", sum)
	}

	w = get(t, s, "/v1/status")
	if w.Code != 200 {
		t.Fatalf("status code = %d", w.Code)
	}
	var st Status
	decode(t, w, &st)
	if !st.Ready || st.Epoch != 2 {
		t.Fatalf("status = %+v", st)
	}
}

func TestHTTPNotReady(t *testing.T) {
	s := NewServer(NewEngine(EngineConfig{}), ServerConfig{Now: fixedNow()})
	w := get(t, s, "/v1/block/10.0.0")
	if w.Code != 503 {
		t.Fatalf("code = %d, want 503 before the first epoch", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var eb errorBody
	decode(t, w, &eb)

	// Status still answers so clients can see why.
	if w := get(t, s, "/v1/status"); w.Code != 200 {
		t.Fatalf("status code = %d", w.Code)
	}
}

func TestHTTPAdmissionSheds(t *testing.T) {
	// A frozen clock never refills: burst 1 admits exactly one summary.
	// Queue 0 means an empty bucket sheds immediately.
	s := downServer(10, ServerConfig{
		Summary: ClassLimits{RPS: 1, Burst: 1, Queue: 0, MaxWait: time.Millisecond},
	})
	if w := get(t, s, "/v1/summary"); w.Code != 200 {
		t.Fatalf("first summary code = %d", w.Code)
	}
	w := get(t, s, "/v1/summary")
	if w.Code != 429 && w.Code != 503 {
		t.Fatalf("second summary code = %d, want shed", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("shed Retry-After = %q", w.Header().Get("Retry-After"))
	}
	var eb errorBody
	decode(t, w, &eb)
	if eb.Error == "" {
		t.Fatal("shed response carries no error document")
	}

	// Lookups ride a separate bucket: still admitted while summaries shed.
	if w := get(t, s, "/v1/block/10.0.1"); w.Code != 200 {
		t.Fatalf("lookup while summary sheds: code = %d", w.Code)
	}
}

func TestHTTPDeadClientShedsQueued(t *testing.T) {
	// Empty bucket + available queue + a context already cancelled: the
	// queued request sheds 503 instead of being served for nobody.
	s := downServer(10, ServerConfig{
		Summary: ClassLimits{RPS: 1, Burst: 1, Queue: 4, MaxWait: time.Hour},
	})
	if w := get(t, s, "/v1/summary"); w.Code != 200 {
		t.Fatalf("first summary code = %d", w.Code)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/v1/summary", nil).WithContext(ctx))
	if w.Code != 503 {
		t.Fatalf("dead queued client code = %d, want 503", w.Code)
	}
}

func TestHTTPMethodAndDegraded(t *testing.T) {
	eng := downEngine(10)
	eng.SetDegraded()
	s := NewServer(eng, ServerConfig{Now: fixedNow()})

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/summary", nil))
	if w.Code != 405 {
		t.Fatalf("POST code = %d", w.Code)
	}

	if w := get(t, s, "/v1/block/10.0.1"); w.Header().Get(HeaderDegraded) != "true" {
		t.Fatal("degraded engine served without the degraded header")
	}
}

func TestBudgetConnDisconnectsOverBudget(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	release := make(chan struct{}, 1)
	release <- struct{}{}
	bc := &budgetConn{Conn: server, release: release, remaining: 8}
	defer bc.Close()

	go func() {
		_, _ = client.Write(make([]byte, 64))
	}()
	buf := make([]byte, 64)
	n, err := bc.Read(buf)
	if err != nil || n != 8 {
		t.Fatalf("budgeted read: n=%d err=%v", n, err)
	}
	if _, err := bc.Read(buf); err == nil {
		t.Fatal("read past budget succeeded")
	}
}
