package serve

import (
	"context"
	"testing"
	"time"

	"sleepnet/internal/monitor"
	"sleepnet/internal/netsim"
)

// downEngine drives an engine where even-numbered blocks go down in round 1.
func downEngine(blocks int) *Engine {
	e := NewEngine(EngineConfig{MinClassifyRounds: 1})
	e.BeginRun(monitor.RunInfo{
		Shards: 1, Rounds: 2, Blocks: blocks,
		Start: testEpoch, Period: time.Hour, Seed: 1,
	})
	pub := make([]monitor.PubBlock, blocks)
	for i := range pub {
		pub[i] = monitor.PubBlock{ID: netsim.MakeBlockID(10, byte(i/256), byte(i%256))}
	}
	e.ResyncShard(0, 0, pub)
	deltas := make([]monitor.RoundPub, blocks)
	for r := 0; r < 2; r++ {
		for i := range deltas {
			deltas[i] = monitor.RoundPub{Avail: 0.5, Long: 0.5}
			if r == 1 && i%2 == 0 {
				deltas[i].Event = monitor.PubEventDown
				deltas[i].Failed = true
			}
		}
		e.PublishRound(0, r, deltas)
	}
	return e
}

func TestEpochSummary(t *testing.T) {
	ep := downEngine(10).Epoch()
	s, err := ep.Summary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks != 10 || s.Down != 5 || s.Epoch != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.FailedRounds != 5 {
		t.Fatalf("failed rounds = %d, want 5", s.FailedRounds)
	}
	if s.MeanAvail != 0.5 {
		t.Fatalf("mean avail = %v, want 0.5", s.MeanAvail)
	}
	if s.Unknown+s.NonDiurnal+s.Relaxed+s.Strict != 10 {
		t.Fatalf("class counts don't partition: %+v", s)
	}
}

func TestEpochRange(t *testing.T) {
	ep := downEngine(10).Epoch()
	ctx := context.Background()

	all, trunc, err := ep.Range(ctx, 0, ^netsim.BlockID(0), 100, false)
	if err != nil || trunc || len(all) != 10 {
		t.Fatalf("full range: n=%d trunc=%v err=%v", len(all), trunc, err)
	}

	// Half-open id window [10.0.2, 10.0.5) → blocks 2, 3, 4.
	lo, hi := netsim.MakeBlockID(10, 0, 2), netsim.MakeBlockID(10, 0, 5)
	win, _, err := ep.Range(ctx, lo, hi, 100, false)
	if err != nil || len(win) != 3 {
		t.Fatalf("window: n=%d err=%v", len(win), err)
	}
	if win[0].ID != "10.0.2/24" || win[2].ID != "10.0.4/24" {
		t.Fatalf("window ids: %s .. %s", win[0].ID, win[2].ID)
	}

	down, _, err := ep.Range(ctx, 0, ^netsim.BlockID(0), 100, true)
	if err != nil || len(down) != 5 {
		t.Fatalf("down filter: n=%d err=%v", len(down), err)
	}
	for _, b := range down {
		if !b.Down {
			t.Fatalf("down filter returned up block %s", b.ID)
		}
	}

	limited, trunc, err := ep.Range(ctx, 0, ^netsim.BlockID(0), 4, false)
	if err != nil || !trunc || len(limited) != 4 {
		t.Fatalf("limit: n=%d trunc=%v err=%v", len(limited), trunc, err)
	}
}

func TestEpochQueriesHonorDeadline(t *testing.T) {
	ep := downEngine(10).Epoch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ep.Summary(ctx); err == nil {
		t.Fatal("summary ignored a dead context")
	}
	if _, _, err := ep.Range(ctx, 0, ^netsim.BlockID(0), 100, false); err == nil {
		t.Fatal("range ignored a dead context")
	}
}
