package serve

// admission.go — token-bucket admission control with priority classes and
// bounded wait queues. Each query class (lookup, range, summary) gets its
// own bucket sized to its cost: single-block lookups are nearly free and
// shed last; full-world summaries are the most expensive scan and shed
// first. A request that finds the bucket empty may wait — but only in a
// bounded queue and only for a bounded time, so overload turns into prompt,
// explicit 429/503 responses instead of an unbounded goroutine pileup
// (the failure mode the ISSUE forbids: "never unbounded queues").
//
// The clock is injected (ServerConfig.Now): admission is wall-clock driven
// by nature — it rations a real resource — but tests and the determinism
// lint both want the read visible and overridable.

import (
	"sync"
	"time"
)

// ClassLimits sizes one priority class's admission.
type ClassLimits struct {
	// RPS is the sustained token refill rate (requests per second).
	RPS float64
	// Burst is the bucket capacity: how far above RPS a spike may go.
	Burst int
	// Queue bounds how many requests may wait for a token at once; the
	// Queue+1'th waiter is shed immediately with 503.
	Queue int
	// MaxWait bounds how long a queued request waits before shedding 429.
	MaxWait time.Duration
}

// bucket is one class's token bucket plus its bounded wait queue.
type bucket struct {
	mu      sync.Mutex
	tokens  float64
	burst   float64
	rps     float64
	last    time.Time
	started bool
	waiting int
	queue   int
	maxWait time.Duration
}

func newBucket(l ClassLimits) *bucket {
	return &bucket{
		tokens:  float64(l.Burst),
		burst:   float64(l.Burst),
		rps:     l.RPS,
		queue:   l.Queue,
		maxWait: l.MaxWait,
	}
}

// take attempts to draw one token at time now. On failure it reports how
// long until a token will exist — the Retry-After the shed response carries.
func (b *bucket) take(now time.Time) (ok bool, retry time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.started {
		b.started, b.last = true, now
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rps
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rps * float64(time.Second))
}

// enter reserves a wait-queue slot; false means the queue is full and the
// request must be shed now.
func (b *bucket) enter() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.waiting >= b.queue {
		return false
	}
	b.waiting++
	return true
}

// leave releases a wait-queue slot.
func (b *bucket) leave() {
	b.mu.Lock()
	b.waiting--
	b.mu.Unlock()
}

// admitResult says what became of an admission attempt.
type admitResult uint8

const (
	// admitOK: token drawn; serve the request.
	admitOK admitResult = iota
	// admitRate: bucket empty past the wait budget — 429 Too Many Requests.
	admitRate
	// admitOverload: wait queue full or client gone — 503 Service Unavailable.
	admitOverload
)

// admit runs the full admission protocol for one request: draw a token,
// or wait (bounded in depth and duration) and try once more, or shed.
// done is the request context's cancellation channel.
func (b *bucket) admit(now func() time.Time, done <-chan struct{}) (admitResult, time.Duration) {
	ok, retry := b.take(now())
	if ok {
		return admitOK, 0
	}
	if retry > b.maxWait {
		return admitRate, retry
	}
	if !b.enter() {
		return admitOverload, retry
	}
	t := time.NewTimer(retry)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
		b.leave()
		return admitOverload, retry
	}
	b.leave()
	if ok, retry = b.take(now()); ok {
		return admitOK, 0
	}
	// Contenders beat us to the refill: shed rather than loop.
	return admitRate, retry
}
