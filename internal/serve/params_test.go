package serve

import (
	"errors"
	"strings"
	"testing"

	"sleepnet/internal/netsim"
)

func TestParseRequestAccepts(t *testing.T) {
	cases := []struct {
		path, query string
		want        Request
	}{
		{"/v1/status", "", Request{Kind: KindStatus}},
		{"/v1/summary", "", Request{Kind: KindSummary}},
		{"/v1/block/10.0.3", "", Request{Kind: KindBlock, Block: netsim.MakeBlockID(10, 0, 3)}},
		{"/v1/block/255.255.255", "", Request{Kind: KindBlock, Block: netsim.MakeBlockID(255, 255, 255)}},
		{"/v1/blocks", "", Request{Kind: KindRange, Lo: 0, Hi: ^netsim.BlockID(0), Limit: DefaultLimit}},
		{"/v1/blocks", "prefix=10", Request{
			Kind: KindRange, Lo: netsim.MakeBlockID(10, 0, 0), Hi: netsim.MakeBlockID(11, 0, 0), Limit: DefaultLimit}},
		{"/v1/blocks", "prefix=10.2", Request{
			Kind: KindRange, Lo: netsim.MakeBlockID(10, 2, 0), Hi: netsim.MakeBlockID(10, 3, 0), Limit: DefaultLimit}},
		{"/v1/blocks", "prefix=10.2.3&down=true&limit=7", Request{
			Kind: KindRange, Lo: netsim.MakeBlockID(10, 2, 3), Hi: netsim.MakeBlockID(10, 2, 3) + 1<<8,
			Limit: 7, OnlyDown: true}},
		// The top prefix's window must clamp, not wrap.
		{"/v1/blocks", "prefix=255", Request{
			Kind: KindRange, Lo: netsim.MakeBlockID(255, 0, 0), Hi: ^netsim.BlockID(0), Limit: DefaultLimit}},
		{"/v1/blocks", "down=0", Request{Kind: KindRange, Lo: 0, Hi: ^netsim.BlockID(0), Limit: DefaultLimit}},
	}
	for _, c := range cases {
		got, err := ParseRequest(c.path, c.query)
		if err != nil {
			t.Errorf("ParseRequest(%q, %q): %v", c.path, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRequest(%q, %q) = %+v, want %+v", c.path, c.query, got, c.want)
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := []struct{ path, query string }{
		{"/", ""},
		{"/v1", ""},
		{"/v1/blocks/", ""},
		{"/v1/block/", ""},
		{"/v1/block/10.0", ""},
		{"/v1/block/10.0.0.0", ""},
		{"/v1/block/10.0.256", ""},
		{"/v1/block/10.0.-1", ""},
		{"/v1/block/10.0.+1", ""},
		{"/v1/block/a.b.c", ""},
		{"/v1/block/10.0.3", "x=1"},  // lookup takes no params
		{"/v1/status", "verbose=1"},  // status takes no params
		{"/v1/summary", "full=true"}, // summary takes no params
		{"/v1/blocks", "prefix="},
		{"/v1/blocks", "prefix=10.2.3.4"},
		{"/v1/blocks", "prefix=300"},
		{"/v1/blocks", "down=maybe"},
		{"/v1/blocks", "limit=0"},
		{"/v1/blocks", "limit=-5"},
		{"/v1/blocks", "limit=10001"},
		{"/v1/blocks", "limit=99999999999999999999"},
		{"/v1/blocks", "unknown=1"},
		{"/v1/blocks", "prefix=10&prefix"},
		{"/v1/block/" + strings.Repeat("1", 200), ""},           // oversized path
		{"/v1/blocks", "prefix=" + strings.Repeat("1&", 200)},   // oversized query
		{"/v1/block/\x00\xff.\x01.\x02", ""},                    // binary garbage
		{"/v1/blocks", "down=true\r\nX-Injected: 1&prefix=1.2"}, // header-injection shape
	}
	for _, c := range cases {
		if _, err := ParseRequest(c.path, c.query); !errors.Is(err, ErrBadRequest) {
			t.Errorf("ParseRequest(%q, %q): err = %v, want ErrBadRequest", c.path, c.query, err)
		}
	}
}

// FuzzParseRequest holds the parser to its contract: never panic, and
// either return a valid typed Request or an error wrapping ErrBadRequest —
// nothing in between.
func FuzzParseRequest(f *testing.F) {
	f.Add("/v1/status", "")
	f.Add("/v1/summary", "")
	f.Add("/v1/block/10.0.3", "")
	f.Add("/v1/blocks", "prefix=10.2&down=true&limit=7")
	f.Add("/v1/blocks", "prefix=255")
	f.Add("/v1/block/999.0.0", "")
	f.Add("/v1/blocks", "limit=99999999999999999999")
	f.Add("/v1/block/%2e%2e/etc/passwd", "")
	f.Add("/v1/blocks", "prefix=1.2.3.4.5")
	f.Add(strings.Repeat("/v1", 100), strings.Repeat("&", 300))
	f.Fuzz(func(t *testing.T, path, query string) {
		req, err := ParseRequest(path, query)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("error does not wrap ErrBadRequest: %v", err)
			}
			return
		}
		switch req.Kind {
		case KindStatus, KindSummary, KindBlock:
		case KindRange:
			if req.Limit <= 0 || req.Limit > MaxLimit {
				t.Fatalf("accepted range with limit %d", req.Limit)
			}
			if req.Lo > req.Hi {
				t.Fatalf("accepted inverted range [%v, %v)", req.Lo, req.Hi)
			}
		default:
			t.Fatalf("accepted request with impossible kind %d", req.Kind)
		}
	})
}
