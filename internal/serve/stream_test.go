package serve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// streamTestPeriod is the paper's 11-minute probing round.
const streamTestPeriod = 660 * time.Second

// sinusoid builds a diurnal availability series: mean + amp*cos(2π·cpd·t +
// shift) sampled per round, peaking at t = -shift/(2π·cpd).
func sinusoid(rounds int, period time.Duration, mean, amp, shiftRad float64) []float64 {
	cpr := period.Seconds() / 86400
	out := make([]float64, rounds)
	for r := range out {
		out[r] = mean + amp*math.Cos(2*math.Pi*cpr*float64(r)+shiftRad)
	}
	return out
}

// circDistHours is the circular distance between two times of day.
func circDistHours(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 24)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// TestStreamClassifierBoundaries drives the replayable streaming classifier
// through the edges the agreement harness depends on: the MinClassifyRounds
// floor (exactly at vs one short), phase wrap-around near 0/24h UTC, and
// degenerate all-zero / constant series.
func TestStreamClassifierBoundaries(t *testing.T) {
	midnight := time.Date(2013, time.April, 25, 0, 0, 0, 0, time.UTC)
	lateStart := time.Date(2013, time.April, 24, 23, 30, 0, 0, time.UTC)

	cases := []struct {
		name        string
		start       time.Time
		minClassify int
		series      func(rounds int) []float64
		rounds      int
		wantClass   DiurnalClass
		// wantPeakUTC, when >= 0, checks the peak's UTC hour within tol
		// (circular).
		wantPeakUTC float64
		tol         float64
	}{
		{
			name:        "one round short of the floor stays unknown",
			start:       midnight,
			minClassify: 131,
			series: func(n int) []float64 {
				return sinusoid(n, streamTestPeriod, 0.5, 0.4, 0)
			},
			rounds:      130,
			wantClass:   ClassUnknown,
			wantPeakUTC: -1,
		},
		{
			name:        "classifies at exactly the floor",
			start:       midnight,
			minClassify: 131,
			series: func(n int) []float64 {
				return sinusoid(n, streamTestPeriod, 0.5, 0.4, 0)
			},
			rounds:      131,
			wantClass:   ClassStrict,
			wantPeakUTC: -1,
		},
		{
			name:        "all-zero series is non-diurnal",
			start:       midnight,
			minClassify: 10,
			series:      func(n int) []float64 { return make([]float64, n) },
			rounds:      200,
			wantClass:   ClassNonDiurnal,
			wantPeakUTC: -1,
		},
		{
			name:        "constant series is non-diurnal",
			start:       midnight,
			minClassify: 10,
			series: func(n int) []float64 {
				out := make([]float64, n)
				for i := range out {
					out[i] = 0.73
				}
				return out
			},
			rounds:      200,
			wantClass:   ClassNonDiurnal,
			wantPeakUTC: -1,
		},
		{
			name:        "peak at midnight UTC maps to hour 0",
			start:       midnight,
			minClassify: 131,
			series: func(n int) []float64 {
				// Peak at round 0, which is midnight UTC.
				return sinusoid(n, streamTestPeriod, 0.5, 0.4, 0)
			},
			rounds:      3 * 131,
			wantClass:   ClassStrict,
			wantPeakUTC: 0,
			tol:         0.25,
		},
		{
			name:        "campaign starting 23:30 wraps peak across midnight",
			start:       lateStart,
			minClassify: 131,
			series: func(n int) []float64 {
				// Peak at round 0 = 23:30 UTC; one hour later the true peak
				// would wrap past 24h — the mapping must stay in [0, 24).
				return sinusoid(n, streamTestPeriod, 0.5, 0.4, 0)
			},
			rounds:      3 * 131,
			wantClass:   ClassStrict,
			wantPeakUTC: 23.5,
			tol:         0.25,
		},
		{
			name:        "peak just before midnight from a shifted wave",
			start:       midnight,
			minClassify: 131,
			series: func(n int) []float64 {
				// shift +2π·(0.2/24): peak at t = -0.2h → 23.8h UTC.
				return sinusoid(n, streamTestPeriod, 0.5, 0.4, 2*math.Pi*0.2/24)
			},
			rounds:      3 * 131,
			wantClass:   ClassStrict,
			wantPeakUTC: 23.8,
			tol:         0.25,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rp := NewReplayer(tc.start, streamTestPeriod, tc.minClassify)
			for _, v := range tc.series(tc.rounds) {
				rp.Push(v)
			}
			class, _ := rp.Classify()
			if class != tc.wantClass {
				t.Fatalf("class = %v, want %v", class, tc.wantClass)
			}
			if tc.wantPeakUTC >= 0 {
				peak, sleep := rp.PeakSleepUTC()
				if peak < 0 || peak >= 24 || sleep < 0 || sleep >= 24 {
					t.Fatalf("peak %v / sleep %v outside [0, 24)", peak, sleep)
				}
				if d := circDistHours(peak, tc.wantPeakUTC); d > tc.tol {
					t.Errorf("peak UTC = %.3f, want %.3f (±%.2fh, circular); off by %.3f",
						peak, tc.wantPeakUTC, tc.tol, d)
				}
				if d := circDistHours(sleep, math.Mod(tc.wantPeakUTC+12, 24)); d > tc.tol {
					t.Errorf("sleep UTC = %.3f, want %.3f", sleep, math.Mod(tc.wantPeakUTC+12, 24))
				}
			}
		})
	}
}

// TestStreamClassifierFloorDefault pins the default classification floor to
// one virtual day of rounds (ceil(86400/660) = 131 for the paper's period).
func TestStreamClassifierFloorDefault(t *testing.T) {
	rp := NewReplayer(time.Time{}, streamTestPeriod, 0)
	if got := rp.MinClassify(); got != 131 {
		t.Fatalf("default MinClassify = %d, want 131", got)
	}
}

// accBitsEqual compares two accumulators for bit-identity, not approximate
// equality: resync and incremental accumulation share the exact float
// operation sequence, so nothing weaker than Float64bits equality is the
// contract.
func accBitsEqual(a, b StreamAcc) bool {
	return math.Float64bits(a.Re1) == math.Float64bits(b.Re1) &&
		math.Float64bits(a.Im1) == math.Float64bits(b.Im1) &&
		math.Float64bits(a.Re2) == math.Float64bits(b.Re2) &&
		math.Float64bits(a.Im2) == math.Float64bits(b.Im2) &&
		math.Float64bits(a.BRe1) == math.Float64bits(b.BRe1) &&
		math.Float64bits(a.BIm1) == math.Float64bits(b.BIm1) &&
		math.Float64bits(a.BRe2) == math.Float64bits(b.BRe2) &&
		math.Float64bits(a.BIm2) == math.Float64bits(b.BIm2) &&
		math.Float64bits(a.RRe1) == math.Float64bits(b.RRe1) &&
		math.Float64bits(a.RIm1) == math.Float64bits(b.RIm1) &&
		math.Float64bits(a.RRe2) == math.Float64bits(b.RRe2) &&
		math.Float64bits(a.RIm2) == math.Float64bits(b.RIm2) &&
		math.Float64bits(a.Sum) == math.Float64bits(b.Sum) &&
		math.Float64bits(a.SumRV) == math.Float64bits(b.SumRV) &&
		math.Float64bits(a.SumSq) == math.Float64bits(b.SumSq) &&
		a.N == b.N
}

// TestStreamResyncBitIdentical is the resync-equivalence property as a
// quick.Check: for random round counts and availability sequences, a
// replayer rebuilt via Resync (the crash-recovery path) holds state
// bit-identical to a fresh replayer fed the same rounds one Push at a time,
// and both classify identically at every floor.
func TestStreamResyncBitIdentical(t *testing.T) {
	start := time.Date(2013, time.April, 24, 17, 18, 0, 0, time.UTC)
	prop := func(seed int64, roundsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		rounds := int(roundsRaw)%512 + 1
		series := make([]float64, rounds)
		for i := range series {
			series[i] = rng.Float64()
		}

		inc := NewReplayer(start, streamTestPeriod, 0)
		for _, v := range series {
			inc.Push(v)
		}
		res := NewReplayer(start, streamTestPeriod, 0)
		// Seed the resync target with garbage state first: Resync must fully
		// replace it, like a shard mirror rebuilt after a crash.
		res.Push(0.123)
		res.Push(0.987)
		res.Resync(series)

		if !accBitsEqual(inc.Acc(), res.Acc()) {
			return false
		}
		if inc.Rounds() != res.Rounds() {
			return false
		}
		ai, ar := inc.Acc(), res.Acc()
		for _, floor := range []int{1, rounds / 2, rounds, rounds + 1} {
			ci, pi := ai.Classify(floor)
			cr, pr := ar.Classify(floor)
			if ci != cr || math.Float64bits(pi) != math.Float64bits(pr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
