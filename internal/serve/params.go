package serve

// params.go — the HTTP request parser. This is deliberately a tiny,
// closed-world parser rather than a mux: every accepted input maps to one
// typed Request, everything else maps to ErrBadRequest with a reason, and
// nothing panics — the fuzz target (FuzzParseRequest) holds it to that. The
// parser also enforces input-size ceilings before doing any work, so
// oversized query strings from hostile clients are rejected for pennies.

import (
	"errors"
	"fmt"
	"strings"

	"sleepnet/internal/netsim"
)

// ErrBadRequest wraps every parse rejection; the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("bad request")

// Input ceilings: enforced before parsing. Generous for every legitimate
// query, tiny against a memory-pressure flood.
const (
	maxPathLen  = 128
	maxQueryLen = 256
)

// Listing limits.
const (
	// DefaultLimit is the blocks-per-listing cap when the client names none.
	DefaultLimit = 1000
	// MaxLimit is the hard per-request listing ceiling.
	MaxLimit = 10000
)

// QueryKind discriminates the parsed request.
type QueryKind uint8

const (
	// KindStatus: GET /v1/status — serving posture, never shed.
	KindStatus QueryKind = iota
	// KindBlock: GET /v1/block/{a}.{b}.{c} — single-block lookup.
	KindBlock
	// KindRange: GET /v1/blocks[?prefix=a[.b[.c]]&down=true&limit=n].
	KindRange
	// KindSummary: GET /v1/summary — full-world rollup.
	KindSummary
)

// String names the kind for metrics and errors.
func (k QueryKind) String() string {
	switch k {
	case KindBlock:
		return "block"
	case KindRange:
		return "range"
	case KindSummary:
		return "summary"
	default:
		return "status"
	}
}

// Request is one parsed, validated query.
type Request struct {
	Kind  QueryKind
	Block netsim.BlockID // KindBlock
	// Lo, Hi bound a KindRange listing: ids in [Lo, Hi).
	Lo, Hi   netsim.BlockID
	Limit    int
	OnlyDown bool
}

// ParseRequest parses an HTTP path and raw query string into a Request.
// It never panics; every rejection wraps ErrBadRequest.
func ParseRequest(path, rawQuery string) (Request, error) {
	if len(path) > maxPathLen {
		return Request{}, fmt.Errorf("%w: path exceeds %d bytes", ErrBadRequest, maxPathLen)
	}
	if len(rawQuery) > maxQueryLen {
		return Request{}, fmt.Errorf("%w: query exceeds %d bytes", ErrBadRequest, maxQueryLen)
	}
	switch {
	case path == "/v1/status":
		if rawQuery != "" {
			return Request{}, fmt.Errorf("%w: status takes no parameters", ErrBadRequest)
		}
		return Request{Kind: KindStatus}, nil
	case path == "/v1/summary":
		if rawQuery != "" {
			return Request{}, fmt.Errorf("%w: summary takes no parameters", ErrBadRequest)
		}
		return Request{Kind: KindSummary}, nil
	case strings.HasPrefix(path, "/v1/block/"):
		if rawQuery != "" {
			return Request{}, fmt.Errorf("%w: block lookup takes no parameters", ErrBadRequest)
		}
		id, err := parseBlockID(path[len("/v1/block/"):])
		if err != nil {
			return Request{}, err
		}
		return Request{Kind: KindBlock, Block: id}, nil
	case path == "/v1/blocks":
		return parseRangeQuery(rawQuery)
	default:
		return Request{}, fmt.Errorf("%w: unknown path %q", ErrBadRequest, clip(path))
	}
}

// parseRangeQuery validates the /v1/blocks parameter set. Unknown keys are
// rejected — a strict surface keeps malformed-input handling typed instead
// of silently ignoring attacker-shaped noise.
func parseRangeQuery(rawQuery string) (Request, error) {
	req := Request{Kind: KindRange, Lo: 0, Hi: ^netsim.BlockID(0), Limit: DefaultLimit}
	if rawQuery == "" {
		return req, nil
	}
	for _, kv := range strings.Split(rawQuery, "&") {
		key, val, _ := strings.Cut(kv, "=")
		switch key {
		case "prefix":
			lo, hi, err := prefixRange(val)
			if err != nil {
				return Request{}, err
			}
			req.Lo, req.Hi = lo, hi
		case "down":
			switch val {
			case "true", "1":
				req.OnlyDown = true
			case "false", "0":
				req.OnlyDown = false
			default:
				return Request{}, fmt.Errorf("%w: down must be true or false, got %q", ErrBadRequest, clip(val))
			}
		case "limit":
			n, err := parseUint(val, MaxLimit)
			if err != nil {
				return Request{}, fmt.Errorf("%w: limit: %v", ErrBadRequest, err)
			}
			if n == 0 {
				return Request{}, fmt.Errorf("%w: limit must be positive", ErrBadRequest)
			}
			req.Limit = n
		default:
			return Request{}, fmt.Errorf("%w: unknown parameter %q", ErrBadRequest, clip(key))
		}
	}
	return req, nil
}

// parseBlockID parses a strict "a.b.c" /24 prefix.
func parseBlockID(s string) (netsim.BlockID, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return 0, fmt.Errorf("%w: block id must be a.b.c, got %q", ErrBadRequest, clip(s))
	}
	var oct [3]int
	for i, p := range parts {
		n, err := parseUint(p, 255)
		if err != nil {
			return 0, fmt.Errorf("%w: block id octet %d: %v", ErrBadRequest, i, err)
		}
		oct[i] = n
	}
	return netsim.MakeBlockID(byte(oct[0]), byte(oct[1]), byte(oct[2])), nil
}

// prefixRange maps "a", "a.b", or "a.b.c" to the half-open id window the
// prefix covers.
func prefixRange(s string) (lo, hi netsim.BlockID, err error) {
	parts := strings.Split(s, ".")
	if len(parts) < 1 || len(parts) > 3 {
		return 0, 0, fmt.Errorf("%w: prefix must be a, a.b, or a.b.c, got %q", ErrBadRequest, clip(s))
	}
	var oct [3]int
	for i, p := range parts {
		n, perr := parseUint(p, 255)
		if perr != nil {
			return 0, 0, fmt.Errorf("%w: prefix octet %d: %v", ErrBadRequest, i, perr)
		}
		oct[i] = n
	}
	lo = netsim.MakeBlockID(byte(oct[0]), byte(oct[1]), byte(oct[2]))
	span := uint64(1) << uint(8*(4-len(parts)))
	if hi64 := uint64(lo) + span; hi64 > uint64(^netsim.BlockID(0)) {
		hi = ^netsim.BlockID(0)
	} else {
		hi = netsim.BlockID(hi64)
	}
	return lo, hi, nil
}

// parseUint parses a plain decimal in [0, max]: digits only, no sign, no
// blank, at most as many digits as max has. Returns a bare error; callers
// wrap it with ErrBadRequest context.
func parseUint(s string, max int) (int, error) {
	if s == "" {
		return 0, errors.New("empty number")
	}
	if len(s) > len(fmt.Sprint(max)) {
		return 0, fmt.Errorf("number %q too long", clip(s))
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit in %q", clip(s))
		}
		n = n*10 + int(c-'0')
	}
	if n > max {
		return 0, fmt.Errorf("%d exceeds maximum %d", n, max)
	}
	return n, nil
}

// clip bounds attacker-controlled strings quoted into error messages.
func clip(s string) string {
	const keep = 32
	if len(s) <= keep {
		return s
	}
	return s[:keep] + "…"
}
