package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/metrics"
	"sleepnet/internal/monitor"
	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

var testEpoch = time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC)

// testNet mirrors the monitor tests' synthetic network: n probe-eligible
// blocks with a few flappy hosts so estimates move.
func testNet(n int) *netsim.Network {
	net := netsim.NewNetwork(0xbeef)
	for i := 0; i < n; i++ {
		id := netsim.MakeBlockID(byte(10+i/65536), byte(i/256%256), byte(i%256))
		blk := &netsim.Block{ID: id, Seed: uint64(id) ^ 0xbeef}
		for h := 1; h <= 20; h++ {
			blk.Behaviors[h] = netsim.AlwaysOn{}
		}
		for h := 21; h <= 26; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.6, Seed: uint64(id) + uint64(h)*257}
		}
		net.AddBlock(blk)
	}
	return net
}

func baseConfig(net *netsim.Network, rounds int) monitor.Config {
	return monitor.Config{
		Net:         net,
		Start:       testEpoch,
		Rounds:      rounds,
		Shards:      4,
		Seed:        42,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

// drive feeds an engine directly through the EpochSink contract: one shard,
// `blocks` blocks, `rounds` rounds of series(block, round) availabilities.
func drive(e *Engine, blocks, rounds int, period time.Duration, series func(b, r int) float64) {
	e.BeginRun(monitor.RunInfo{
		Shards: 1, Rounds: rounds, Blocks: blocks,
		Start: testEpoch, Period: period, Seed: 1,
	})
	pub := make([]monitor.PubBlock, blocks)
	for i := range pub {
		pub[i] = monitor.PubBlock{ID: netsim.MakeBlockID(10, 0, byte(i))}
	}
	e.ResyncShard(0, 0, pub)
	deltas := make([]monitor.RoundPub, blocks)
	for r := 0; r < rounds; r++ {
		for i := range deltas {
			v := series(i, r)
			deltas[i] = monitor.RoundPub{Avail: v, Long: v}
		}
		e.PublishRound(0, r, deltas)
	}
}

func TestEngineSealsFromLiveMonitor(t *testing.T) {
	reg := metrics.New()
	eng := NewEngine(EngineConfig{Metrics: reg, MinClassifyRounds: 1})
	cfg := baseConfig(testNet(23), 6)
	cfg.Sink = eng
	m, err := monitor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil || !res.Completed {
		t.Fatalf("run: err=%v res=%+v", err, res)
	}

	ep := eng.Epoch()
	if ep == nil {
		t.Fatal("no epoch sealed after a completed run")
	}
	if ep.Rounds != 6 || ep.TotalRounds != 6 {
		t.Fatalf("epoch rounds = %d/%d, want 6/6", ep.Rounds, ep.TotalRounds)
	}
	if ep.Len() != 23 {
		t.Fatalf("epoch has %d blocks, want 23", ep.Len())
	}
	if want := testEpoch.Add(5 * 660 * time.Second); !ep.Time.Equal(want) {
		t.Fatalf("epoch time = %v, want %v", ep.Time, want)
	}

	st := eng.Status()
	if !st.Ready || st.Epoch != 6 || st.StaleRounds != 0 || st.Degraded {
		t.Fatalf("status = %+v", st)
	}

	if _, ok := ep.Lookup(netsim.MakeBlockID(10, 0, 0)); !ok {
		t.Fatal("known block missing from epoch")
	}
	if _, ok := ep.Lookup(netsim.MakeBlockID(99, 99, 99)); ok {
		t.Fatal("lookup of absent block succeeded")
	}

	snap := reg.Snapshot()
	if snap.Counter("serve.epochs_sealed") < 6 {
		t.Fatalf("epochs_sealed = %d, want >= 6", snap.Counter("serve.epochs_sealed"))
	}
	if snap.Counter("serve.resyncs") < 4 {
		t.Fatalf("resyncs = %d, want >= 4 (one per shard)", snap.Counter("serve.resyncs"))
	}
}

// epochsIdentical compares two epochs column by column, bit-exact on floats.
func epochsIdentical(t *testing.T, a, b *Epoch) {
	t.Helper()
	if a.Rounds != b.Rounds || a.Len() != b.Len() {
		t.Fatalf("shape: %d rounds/%d blocks vs %d rounds/%d blocks",
			a.Rounds, a.Len(), b.Rounds, b.Len())
	}
	for i := range a.ids {
		switch {
		case a.ids[i] != b.ids[i]:
			t.Fatalf("block %d: id %v vs %v", i, a.ids[i], b.ids[i])
		case math.Float64bits(a.avail[i]) != math.Float64bits(b.avail[i]):
			t.Fatalf("block %v: avail %v vs %v", a.ids[i], a.avail[i], b.avail[i])
		case math.Float64bits(a.long[i]) != math.Float64bits(b.long[i]):
			t.Fatalf("block %v: long %v vs %v", a.ids[i], a.long[i], b.long[i])
		case a.down[i] != b.down[i]:
			t.Fatalf("block %v: down %v vs %v", a.ids[i], a.down[i], b.down[i])
		case a.failed[i] != b.failed[i]:
			t.Fatalf("block %v: failed %d vs %d", a.ids[i], a.failed[i], b.failed[i])
		case a.class[i] != b.class[i]:
			t.Fatalf("block %v: class %v vs %v", a.ids[i], a.class[i], b.class[i])
		case math.Float64bits(a.phase[i]) != math.Float64bits(b.phase[i]):
			t.Fatalf("block %v: phase %v vs %v", a.ids[i], a.phase[i], b.phase[i])
		}
	}
}

// chaosWorld mirrors the monitor chaos tests: a generated internet with
// deterministic wire faults.
func chaosWorld(t *testing.T) *netsim.Network {
	t.Helper()
	w, err := world.Generate(world.Config{Blocks: 40, Seed: 0x5eed, OutagesPerBlockWeek: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Net.SetTap(faults.New(faults.Config{
		Seed:        0xfa17,
		LossRate:    0.02,
		CorruptRate: 0.01,
	}))
	return w.Net
}

// TestEngineCrashEquivalence pins the serving-layer analogue of the
// monitor's headline property: an engine fed by a crash-looping, halted,
// WAL-recovered monitor ends bit-identical to one fed by an uninterrupted
// run. The resync path rebuilds spectral accumulators with the exact float
// operation order of incremental publication, so even the DFT phases match
// to the last bit.
func TestEngineCrashEquivalence(t *testing.T) {
	const rounds = 16
	mkCfg := func(net *netsim.Network, sink monitor.EpochSink) monitor.Config {
		cfg := baseConfig(net, rounds)
		cfg.SnapshotEvery = 5
		cfg.Sink = sink
		return cfg
	}

	clean := NewEngine(EngineConfig{MinClassifyRounds: 4})
	m, err := monitor.New(mkCfg(chaosWorld(t), clean))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := m.Run(context.Background()); err != nil || !res.Completed {
		t.Fatalf("clean run: err=%v res=%+v", err, res)
	}

	// Chaotic twin: three injected shard kills, a hard halt, then a resume
	// over the WAL — the same engine sees kills' resyncs mid-run and the
	// resume's recovery resyncs across monitor instances.
	dir := t.TempDir()
	eng := NewEngine(EngineConfig{MinClassifyRounds: 4})
	cfg := mkCfg(chaosWorld(t), eng)
	cfg.WALDir = dir
	cfg.HaltAfterRound = 11
	cfg.Chaos = &faults.ChaosPlan{
		Kills: []faults.ShardRound{{Shard: 0, Round: 3}, {Shard: 1, Round: 7}, {Shard: 2, Round: 9}},
	}
	m2, err := monitor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(context.Background()); !errors.Is(err, monitor.ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	if ep := eng.Epoch(); ep == nil || ep.Rounds >= rounds {
		t.Fatalf("halted engine epoch = %+v, want partial", ep)
	}

	cfg2 := mkCfg(chaosWorld(t), eng)
	cfg2.WALDir = dir
	m3, err := monitor.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := m3.Run(context.Background()); err != nil || !res.Completed {
		t.Fatalf("resume run: err=%v res=%+v", err, res)
	}

	epochsIdentical(t, clean.Epoch(), eng.Epoch())
}

func TestEngineCopyOnWriteIsolation(t *testing.T) {
	reg := metrics.New()
	e := NewEngine(EngineConfig{Metrics: reg, MinClassifyRounds: 1})
	drive(e, 3, 2, time.Hour, func(b, r int) float64 { return float64(b) + float64(r)/10 })

	old := e.Epoch()
	if old == nil || old.Rounds != 2 {
		t.Fatalf("epoch after 2 rounds: %+v", old)
	}
	oldAvail := old.avail[1]

	// Two more rounds: a frozen reader's epoch must not move underneath it.
	deltas := []monitor.RoundPub{{Avail: 9}, {Avail: 9}, {Avail: 9}}
	e.PublishRound(0, 2, deltas)
	e.PublishRound(0, 3, deltas)

	if old.Rounds != 2 || old.avail[1] != oldAvail {
		t.Fatal("sealed epoch mutated by later publishes")
	}
	cur := e.Epoch()
	if cur.Rounds != 4 || cur.avail[1] != 9 {
		t.Fatalf("current epoch = %d rounds avail=%v, want 4 rounds avail=9", cur.Rounds, cur.avail[1])
	}

	// A replayed round must be dropped, not corrupt state.
	e.PublishRound(0, 2, deltas)
	if got := e.Epoch(); got.Rounds != 4 {
		t.Fatalf("replayed round advanced the epoch to %d", got.Rounds)
	}
	if reg.Snapshot().Counter("serve.publish_ignored") == 0 {
		t.Fatal("replayed round was not counted as ignored")
	}
}

func TestStreamingClassifier(t *testing.T) {
	// One-hour rounds, three virtual days. Block 0: clean diurnal sinusoid
	// peaking at hour 8. Block 1: flat. Block 2: a ramp — variance without
	// daily periodicity.
	e := NewEngine(EngineConfig{}) // default minClassify = 24 rounds = 1 day
	drive(e, 3, 72, time.Hour, func(b, r int) float64 {
		switch b {
		case 0:
			return 0.5 + 0.4*math.Cos(2*math.Pi*(float64(r)-8)/24)
		case 1:
			return 0.7
		default:
			return float64(r) / 72
		}
	})
	ep := e.Epoch()
	if ep == nil {
		t.Fatal("no epoch")
	}

	s0, _ := ep.Lookup(netsim.MakeBlockID(10, 0, 0))
	if s0.Class != "strict" {
		t.Fatalf("sinusoid classified %q, want strict", s0.Class)
	}
	if s0.PeakUTCHour == nil || math.Abs(*s0.PeakUTCHour-8) > 0.2 {
		t.Fatalf("peak hour = %v, want ~8", s0.PeakUTCHour)
	}
	if s0.SleepUTCHour == nil || math.Abs(*s0.SleepUTCHour-20) > 0.2 {
		t.Fatalf("sleep hour = %v, want ~20", s0.SleepUTCHour)
	}

	s1, _ := ep.Lookup(netsim.MakeBlockID(10, 0, 1))
	if s1.Class != "non-diurnal" {
		t.Fatalf("flat block classified %q, want non-diurnal", s1.Class)
	}
	if s1.PeakUTCHour != nil {
		t.Fatal("non-diurnal block carries a peak hour")
	}

	s2, _ := ep.Lookup(netsim.MakeBlockID(10, 0, 2))
	if s2.Class == "strict" {
		t.Fatal("ramp classified strict")
	}

	// Below the classification floor everything is unknown.
	young := NewEngine(EngineConfig{})
	drive(young, 1, 10, time.Hour, func(b, r int) float64 { return 0.5 })
	sy, _ := young.Epoch().Lookup(netsim.MakeBlockID(10, 0, 0))
	if sy.Class != "unknown" {
		t.Fatalf("10-round block classified %q, want unknown", sy.Class)
	}
}

// TestEngineDegradedOnQuarantine: a crash-looping shard quarantines; the
// engine keeps serving the surviving shards' progress and reports degraded.
func TestEngineDegradedOnQuarantine(t *testing.T) {
	kills := make([]faults.ShardRound, 0, 8)
	for r := 0; r < 8; r++ {
		kills = append(kills, faults.ShardRound{Shard: 0, Round: r})
	}
	eng := NewEngine(EngineConfig{MinClassifyRounds: 1})
	cfg := baseConfig(testNet(8), 4)
	cfg.Shards = 2
	cfg.MaxRestarts = 3
	cfg.Chaos = &faults.ChaosPlan{Kills: kills}
	cfg.Sink = eng
	m, err := monitor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want one shard", res.Quarantined)
	}

	st := eng.Status()
	if !st.Degraded {
		t.Fatal("engine not degraded after quarantine")
	}
	if !st.Ready {
		t.Fatal("engine must keep serving the surviving shard's epoch")
	}
	ep := eng.Epoch()
	if ep.Rounds != 4 {
		t.Fatalf("epoch floor = %d, want the surviving shard's 4", ep.Rounds)
	}
	if ep.Len() != 8 {
		t.Fatalf("epoch len = %d, want all 8 blocks (quarantined shard frozen)", ep.Len())
	}
}
