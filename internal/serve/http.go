package serve

// http.go — the hardened HTTP surface over the engine. Every response is
// marshalled to a buffer first and written with an explicit Content-Length:
// a shed or failed request gets a complete JSON error document with a
// Retry-After, never a hung connection or a truncated body. Staleness is
// explicit — every data response carries the epoch and how many committed
// rounds it lags the most advanced shard, and degraded mode adds a header
// instead of silently serving old data.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sleepnet/internal/metrics"
)

// Staleness and posture headers on every response.
const (
	// HeaderEpoch: the served epoch's round floor.
	HeaderEpoch = "X-Sleepnet-Epoch"
	// HeaderStale: committed rounds the served epoch lags the monitor.
	HeaderStale = "X-Sleepnet-Stale-Rounds"
	// HeaderDegraded: present ("true") when the monitor quarantined a shard
	// or died; the epoch may be permanently stale.
	HeaderDegraded = "X-Sleepnet-Degraded"
)

// ServerConfig configures the HTTP layer. The zero value gets production
// defaults from (*ServerConfig).withDefaults.
type ServerConfig struct {
	// Metrics receives request/shed counters and the latency histogram.
	Metrics *metrics.Registry
	// RequestTimeout bounds one request's total handling time, propagated
	// into aggregation scans as a context deadline.
	RequestTimeout time.Duration
	// Lookup, Range, Summary size the three admission classes. Lookups shed
	// last; summaries shed first.
	Lookup, Range, Summary ClassLimits
	// MaxConns caps concurrently accepted connections; excess dials queue in
	// the kernel backlog instead of consuming server memory.
	MaxConns int
	// MaxRequestBytes is the per-connection read budget: a client that
	// dribbles or floods more than this many request bytes is disconnected.
	MaxRequestBytes int64
	// ReadHeaderTimeout, IdleTimeout, WriteTimeout harden the http.Server
	// against slow-loris clients on both directions.
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	WriteTimeout      time.Duration
	// Now is the admission clock (tests inject a fake).
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.Lookup == (ClassLimits{}) {
		c.Lookup = ClassLimits{RPS: 200000, Burst: 20000, Queue: 1024, MaxWait: 50 * time.Millisecond}
	}
	if c.Range == (ClassLimits{}) {
		c.Range = ClassLimits{RPS: 2000, Burst: 200, Queue: 64, MaxWait: 100 * time.Millisecond}
	}
	if c.Summary == (ClassLimits{}) {
		c.Summary = ClassLimits{RPS: 100, Burst: 20, Queue: 8, MaxWait: 100 * time.Millisecond}
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 10
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 2 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.Now == nil {
		//lint:allow nowallclock: admission control rations a real resource; the clock is injected and overridable in tests
		c.Now = time.Now
	}
	return c
}

// serverMetrics caches the HTTP layer's instruments.
type serverMetrics struct {
	requests   *metrics.Counter
	ok         *metrics.Counter
	badRequest *metrics.Counter
	notFound   *metrics.Counter
	shed429    *metrics.Counter
	shed503    *metrics.Counter
	notReady   *metrics.Counter
	latency    *metrics.Histogram
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	if r == nil {
		return &serverMetrics{}
	}
	return &serverMetrics{
		requests:   r.Counter("serve.http_requests"),
		ok:         r.Counter("serve.http_ok"),
		badRequest: r.Counter("serve.http_bad_request"),
		notFound:   r.Counter("serve.http_not_found"),
		shed429:    r.Counter("serve.http_shed_rate"),
		shed503:    r.Counter("serve.http_shed_overload"),
		notReady:   r.Counter("serve.http_not_ready"),
		latency: r.Histogram("serve.http_latency", metrics.UnitSeconds,
			[]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}),
	}
}

// Server is the hardened HTTP front end over an Engine.
type Server struct {
	eng *Engine
	cfg ServerConfig
	met *serverMetrics

	lookup  *bucket
	ranges  *bucket
	summary *bucket
}

// NewServer wires a server over an engine.
func NewServer(eng *Engine, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		eng:     eng,
		cfg:     cfg,
		met:     newServerMetrics(cfg.Metrics),
		lookup:  newBucket(cfg.Lookup),
		ranges:  newBucket(cfg.Range),
		summary: newBucket(cfg.Summary),
	}
}

// errorBody is the JSON document every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON marshals v fully, then writes status + headers + body in one
// shot with an explicit Content-Length — a client never sees partial JSON.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		// Unreachable with our value types; keep the contract anyway.
		body, status = []byte(`{"error":"encoding failed"}`), http.StatusInternalServerError
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body) // a client that vanished mid-write is the client's problem
}

// shed writes an explicit shed/error response with a Retry-After.
func (s *Server) shed(w http.ResponseWriter, status int, retry time.Duration, msg string) {
	sec := int(retry / time.Second)
	if retry%time.Second != 0 || sec == 0 {
		sec++ // ceil, minimum 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	s.writeJSON(w, status, errorBody{Error: msg})
}

// bucketFor maps a query kind to its admission class.
func (s *Server) bucketFor(k QueryKind) *bucket {
	switch k {
	case KindBlock:
		return s.lookup
	case KindSummary:
		return s.summary
	default:
		return s.ranges
	}
}

// blocksBody is the KindRange response document.
type blocksBody struct {
	Epoch     int           `json:"epoch"`
	Truncated bool          `json:"truncated"`
	Blocks    []BlockStatus `json:"blocks"`
}

// ServeHTTP implements the full query surface: parse, posture headers,
// admission, deadline-bounded execution, buffered write.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Inc()
	stop := s.met.latency.Time()
	defer stop()

	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "only GET is served"})
		return
	}
	req, err := ParseRequest(r.URL.Path, r.URL.RawQuery)
	if err != nil {
		s.met.badRequest.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	st := s.eng.Status()
	h := w.Header()
	h.Set(HeaderEpoch, strconv.Itoa(st.Epoch))
	h.Set(HeaderStale, strconv.Itoa(st.StaleRounds))
	if st.Degraded {
		h.Set(HeaderDegraded, "true")
	}

	if req.Kind == KindStatus {
		// Posture is always served: it is how clients find out WHY they are
		// being shed, so it takes no token and touches no epoch.
		s.met.ok.Inc()
		s.writeJSON(w, http.StatusOK, st)
		return
	}
	ep := s.eng.Epoch()
	if ep == nil {
		s.met.notReady.Inc()
		s.shed(w, http.StatusServiceUnavailable, time.Second, "no epoch sealed yet")
		return
	}

	switch res, retry := s.bucketFor(req.Kind).admit(s.cfg.Now, r.Context().Done()); res {
	case admitRate:
		s.met.shed429.Inc()
		s.shed(w, http.StatusTooManyRequests, retry, req.Kind.String()+" rate exceeded")
		return
	case admitOverload:
		s.met.shed503.Inc()
		s.shed(w, http.StatusServiceUnavailable, retry, req.Kind.String()+" queue full")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	switch req.Kind {
	case KindBlock:
		bs, ok := ep.Lookup(req.Block)
		if !ok {
			s.met.notFound.Inc()
			s.writeJSON(w, http.StatusNotFound, errorBody{Error: "block not monitored: " + req.Block.String()})
			return
		}
		s.met.ok.Inc()
		s.writeJSON(w, http.StatusOK, bs)
	case KindRange:
		blocks, truncated, err := ep.Range(ctx, req.Lo, req.Hi, req.Limit, req.OnlyDown)
		if err != nil {
			s.met.shed503.Inc()
			s.shed(w, http.StatusServiceUnavailable, time.Second, "listing exceeded the request deadline")
			return
		}
		if blocks == nil {
			blocks = []BlockStatus{}
		}
		s.met.ok.Inc()
		s.writeJSON(w, http.StatusOK, blocksBody{Epoch: ep.Rounds, Truncated: truncated, Blocks: blocks})
	case KindSummary:
		sum, err := ep.Summary(ctx)
		if err != nil {
			s.met.shed503.Inc()
			s.shed(w, http.StatusServiceUnavailable, time.Second, "summary exceeded the request deadline")
			return
		}
		s.met.ok.Inc()
		s.writeJSON(w, http.StatusOK, sum)
	}
}

// Serve runs the hardened http.Server on l until ctx is cancelled. The
// listener is wrapped with the connection cap and per-connection read
// budget; the http.Server adds header/idle/write deadlines. Returns nil on
// graceful shutdown.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		MaxHeaderBytes:    16 << 10,
	}
	capped := &cappedListener{
		Listener: l,
		slots:    make(chan struct{}, s.cfg.MaxConns),
		budget:   s.cfg.MaxRequestBytes,
	}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutCtx) // best-effort drain; Close below is the backstop
			_ = srv.Close()           // already-closed is fine
		case <-stopped:
		}
	}()
	err := srv.Serve(capped)
	close(stopped)
	if errors.Is(err, http.ErrServerClosed) || ctx.Err() != nil {
		return nil
	}
	return err
}

// cappedListener enforces the connection cap: Accept blocks once MaxConns
// connections are in flight, leaving excess dials in the kernel backlog
// (bounded there by the OS) instead of in server memory.
type cappedListener struct {
	net.Listener
	slots  chan struct{}
	budget int64
}

func (l *cappedListener) Accept() (net.Conn, error) {
	l.slots <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.slots
		return nil, err
	}
	return &budgetConn{Conn: c, release: l.slots, remaining: l.budget}, nil
}

// budgetConn counts request bytes and disconnects a client that exceeds its
// read budget — the oversized-request and infinite-dribble defence.
type budgetConn struct {
	net.Conn
	release   chan struct{}
	remaining int64
	closeOnce sync.Once
}

func (c *budgetConn) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, fmt.Errorf("serve: connection read budget exhausted")
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.Conn.Read(p)
	c.remaining -= int64(n)
	return n, err
}

func (c *budgetConn) Close() error {
	err := c.Conn.Close()
	c.closeOnce.Do(func() { <-c.release })
	return err
}
