package serve

// stream.go — the streaming diurnal classifier as a standalone, replayable
// component. The epoch engine (engine.go) consumes these types on its
// publish path; internal/agree replays recorded availability series through
// them offline to measure agreement with the batch FFT oracle. Both paths
// share the exact same float operation sequence, so an offline replay of a
// series is bit-identical to the live accumulation the engine would have
// performed — the property the resync/replay tests pin.

import (
	"math"
	"time"

	"sleepnet/internal/analysis"
)

// Basis is the DFT basis of the streaming classifier: the fundamental
// (1 cycle/day) and first-harmonic angles evaluated per round. It is pure
// derived state — two engines (or an engine and an offline replayer) built
// from the same campaign period produce identical bases.
type Basis struct {
	// CyclesPerRound is the fraction of a day one probing round covers.
	CyclesPerRound float64
}

// NewBasis derives the basis from the campaign's probing period.
func NewBasis(period time.Duration) Basis {
	return Basis{CyclesPerRound: period.Seconds() / (24 * 60 * 60)}
}

// Waves returns the DFT basis at round r for the fundamental (1 cycle/day)
// and first harmonic. Every consumer — incremental publication, resync
// rebuild, offline replay — calls this, so their float operation sequences,
// and therefore their results, are identical.
//
//lint:hotpath: evaluated per block per round on the publish path; pure math
func (b Basis) Waves(r int) (c1, s1, c2, s2 float64) {
	theta := -2 * math.Pi * b.CyclesPerRound * float64(r)
	return math.Cos(theta), math.Sin(theta), math.Cos(2 * theta), math.Sin(2 * theta)
}

// DefaultMinClassify is the default classification floor: one virtual day
// of rounds. Below the floor the classifier reports ClassUnknown.
func (b Basis) DefaultMinClassify() int {
	return int(math.Ceil(1 / b.CyclesPerRound))
}

// StreamAcc is one block's incremental spectral state: running DFT sums at
// the diurnal frequency and its first harmonic, the matching sums of the
// bare basis waves, plus the series moments. All updates happen in round
// order, so a state rebuilt from the committed series (resync or offline
// replay) is bit-identical to one accumulated incrementally — the property
// the crash-equivalence test pins.
type StreamAcc struct {
	Re1, Im1 float64
	Re2, Im2 float64
	// BRe/BIm accumulate the bare basis waves (Σ cos, Σ sin) and RRe/RIm
	// their first moments (Σ r·cos, Σ r·sin). The batch oracle removes the
	// mean and a least-squares linear trend before the FFT; a live campaign
	// never spans a whole number of days, so without the same correction
	// the series mean (and any drift) leaks straight into the diurnal bin:
	// Σ v·e^{-iωr} picks up mean·Σ e^{-iωr}. Carrying the basis sums lets
	// Classify subtract the fitted line's projection exactly, in closed
	// form — the streaming mirror of dsp.DetrendLinearInto.
	BRe1, BIm1 float64
	BRe2, BIm2 float64
	RRe1, RIm1 float64
	RRe2, RIm2 float64
	Sum        float64
	SumRV      float64
	SumSq      float64
	N          int32
}

// Add folds one round's availability value into the accumulator against the
// basis waves for that round. Rounds arrive strictly in order, so the round
// index is the current count.
//
//lint:hotpath: folded per block per round on the publish path; pure arithmetic
func (a *StreamAcc) Add(v, c1, s1, c2, s2 float64) {
	r := float64(a.N)
	a.Re1 += v * c1
	a.Im1 += v * s1
	a.Re2 += v * c2
	a.Im2 += v * s2
	a.BRe1 += c1
	a.BIm1 += s1
	a.BRe2 += c2
	a.BIm2 += s2
	a.RRe1 += r * c1
	a.RIm1 += r * s1
	a.RRe2 += r * c2
	a.RIm2 += r * s2
	a.Sum += v
	a.SumRV += r * v
	a.SumSq += v * v
	a.N++
}

// Classify derives (class, phase) from the accumulated state. Pure and
// deterministic: same accumulator, same answer.
//
// It evaluates the detrended series in closed form: the least-squares line
// a+b·r fit to the rounds so far is subtracted from the DFT sums and the
// variance, matching the batch pipeline's detrend-then-FFT preprocessing
// without revisiting the series. Classification then mirrors the batch
// rules as far as two tracked bins allow: strict needs the fundamental to
// dominate (half the residual variance and twice the first harmonic);
// relaxed needs a substantial combined share across the two bins. The batch
// rule's *relaxed* class has no amplitude floor — it fires whenever the
// full spectrum's peak happens to land at the fundamental, a rank
// competition against bins this classifier does not observe — so relaxed
// agreement with the batch oracle is inherently partial; the agreement
// harness (internal/agree) measures and gates exactly how partial.
func (a *StreamAcc) Classify(minRounds int) (DiurnalClass, float64) {
	if int(a.N) < minRounds || a.N == 0 {
		return ClassUnknown, 0
	}
	n := float64(a.N)
	mean := a.Sum / n
	// Least-squares line over round indices 0..n-1: closed-form moments.
	rbar := (n - 1) / 2
	sumR2 := (n - 1) * n * (2*n - 1) / 6
	denom := sumR2 - n*rbar*rbar
	var slope float64
	if denom > 0 {
		slope = (a.SumRV - n*rbar*mean) / denom
	}
	intercept := mean - slope*rbar
	// Residual sum of squares of v - (intercept + slope·r), expanded so it
	// needs only the accumulated moments; clamp tiny negative rounding.
	ss := a.SumSq - 2*intercept*a.Sum - 2*slope*a.SumRV +
		n*intercept*intercept + 2*intercept*slope*n*rbar + slope*slope*sumR2
	if ss < 0 {
		ss = 0
	}
	variance := ss / n
	if variance < flatVariance {
		return ClassNonDiurnal, 0
	}
	// Detrended DFT sums: Σ(v - intercept - slope·r)·e^{-iωr}.
	re1 := a.Re1 - intercept*a.BRe1 - slope*a.RRe1
	im1 := a.Im1 - intercept*a.BIm1 - slope*a.RIm1
	re2 := a.Re2 - intercept*a.BRe2 - slope*a.RRe2
	im2 := a.Im2 - intercept*a.BIm2 - slope*a.RIm2
	phase := math.Atan2(im1, re1)
	amp1 := 2 * math.Hypot(re1, im1) / n
	amp2 := 2 * math.Hypot(re2, im2) / n
	// A sinusoid of amplitude A contributes A²/2 to the variance.
	share1 := amp1 * amp1 / 2 / variance
	share2 := amp2 * amp2 / 2 / variance
	switch {
	case share1 >= strictShare && amp1 >= 2*amp2:
		return ClassStrict, phase
	case share1+share2 >= relaxedShare:
		return ClassRelaxed, phase
	default:
		return ClassNonDiurnal, phase
	}
}

// startOfDayHour is the campaign start's UTC time-of-day in hours — the
// offset that maps a phase anchored at the campaign start onto UTC
// time-of-day.
func startOfDayHour(start time.Time) float64 {
	u := start.UTC()
	return float64(u.Hour()) + float64(u.Minute())/60 + float64(u.Second())/3600
}

// peakSleepUTC maps a streaming phase (anchored at the campaign start) to
// the UTC hours of peak activity and of sleep (peak + 12h). The engine's
// seal path and the offline replayer both use it, so live answers and
// replayed answers agree exactly.
func peakSleepUTC(phase, startHour float64) (peak, sleep float64) {
	peak = math.Mod(analysis.UTCPeakHour(phase)+startHour, 24)
	sleep = math.Mod(peak+12, 24)
	return peak, sleep
}

// Replayer feeds one block's availability series through the streaming
// classifier offline — exactly what the engine does live, without the epoch
// machinery. internal/agree uses it to replay recorded campaigns against
// the batch FFT oracle.
type Replayer struct {
	basis       Basis
	acc         StreamAcc
	round       int
	minClassify int
	startHour   float64
}

// NewReplayer builds a replayer for a campaign starting at start with the
// given probing period. minClassify <= 0 selects the engine's default floor
// (one virtual day of rounds).
func NewReplayer(start time.Time, period time.Duration, minClassify int) *Replayer {
	b := NewBasis(period)
	if minClassify <= 0 {
		minClassify = b.DefaultMinClassify()
	}
	return &Replayer{basis: b, minClassify: minClassify, startHour: startOfDayHour(start)}
}

// Push feeds the next round's availability value (round order is implicit:
// the first Push is round 0).
func (rp *Replayer) Push(v float64) {
	c1, s1, c2, s2 := rp.basis.Waves(rp.round)
	rp.acc.Add(v, c1, s1, c2, s2)
	rp.round++
}

// Rounds reports how many rounds have been pushed.
func (rp *Replayer) Rounds() int { return rp.round }

// MinClassify reports the classification floor in rounds.
func (rp *Replayer) MinClassify() int { return rp.minClassify }

// Acc returns a copy of the accumulator state (for bit-identity tests).
func (rp *Replayer) Acc() StreamAcc { return rp.acc }

// Classify returns the streaming class and phase for the rounds pushed so
// far. O(1); safe to call after every Push.
func (rp *Replayer) Classify() (DiurnalClass, float64) {
	return rp.acc.Classify(rp.minClassify)
}

// PeakSleepUTC maps the current phase to UTC peak and sleep hours, the way
// the engine's seal path does. Meaningful only when Classify reports a
// diurnal class.
func (rp *Replayer) PeakSleepUTC() (peak, sleep float64) {
	_, phase := rp.Classify()
	return peakSleepUTC(phase, rp.startHour)
}

// Resync discards the accumulated state and rebuilds it from the committed
// series, the way the engine's ResyncShard rebuilds a shard mirror after a
// crash. The rebuilt state is bit-identical to a fresh replayer fed the
// same values via Push — TestStreamResyncBitIdentical pins this.
func (rp *Replayer) Resync(series []float64) {
	rp.acc = StreamAcc{}
	rp.round = 0
	for r := range series {
		c1, s1, c2, s2 := rp.basis.Waves(r)
		rp.acc.Add(series[r], c1, s1, c2, s2)
	}
	rp.round = len(series)
}
