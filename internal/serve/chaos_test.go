package serve

// chaos_test.go — the serving layer's acceptance gate (the serve-chaos CI
// job). A live monitor runs a full campaign while the HTTP front door
// absorbs a well-formed request flood, a slow-loris herd, connection churn,
// and a malformed-request barrage, all at once. The properties pinned:
//
//   1. Zero probe rounds lost: the monitor completes every round and its
//      study is byte-identical to the same seed run with no server and no
//      attackers. Serving reads never perturb measurement.
//   2. Shed requests get explicit 429/503 responses with Retry-After —
//      never hung connections, never partial JSON (the flood drains every
//      body through Content-Length framing and counts mismatches).
//   3. Lookup latency stays bounded (p99) while the summary class sheds.
//   4. Malformed requests never get a 2xx; slow-loris connections are cut.

import (
	"bytes"
	"context"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/metrics"
	"sleepnet/internal/monitor"
	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

// chaosNet builds the deterministic faulty world for the acceptance test.
func chaosNet(t *testing.T, blocks int) *netsim.Network {
	t.Helper()
	w, err := world.Generate(world.Config{Blocks: blocks, Seed: 0x5eed, OutagesPerBlockWeek: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Net.SetTap(faults.New(faults.Config{Seed: 0xfa17, LossRate: 0.02, CorruptRate: 0.01}))
	return w.Net
}

// studyBytes runs a monitor to completion and returns its encoded study.
func studyBytes(t *testing.T, cfg monitor.Config) []byte {
	t.Helper()
	m, err := monitor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil || !res.Completed {
		t.Fatalf("monitor run: err=%v res=%+v", err, res)
	}
	st, err := res.Study()
	if err != nil {
		t.Fatal(err)
	}
	data, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestServeChaosAcceptance(t *testing.T) {
	blocks, rounds := 80, 2500
	if testing.Short() {
		blocks, rounds = 40, 600
	}
	mkCfg := func(sink monitor.EpochSink) monitor.Config {
		cfg := baseConfig(chaosNet(t, blocks), rounds)
		cfg.Sink = sink
		return cfg
	}

	// Real block ids for the lookup flood (plus one guaranteed miss).
	ids := chaosNet(t, blocks).BlockIDs()
	lookupPaths := []string{"/v1/block/77.77.77"}
	for _, id := range ids[:3] {
		b := id.String() // "a.b.c/24"
		lookupPaths = append(lookupPaths, "/v1/block/"+b[:len(b)-3])
	}

	// Reference: same seed, no server, no attackers.
	ref := studyBytes(t, mkCfg(nil))

	reg := metrics.New()
	eng := NewEngine(EngineConfig{Metrics: reg, MinClassifyRounds: 16})
	srv := NewServer(eng, ServerConfig{
		Metrics:           reg,
		ReadHeaderTimeout: 100 * time.Millisecond,
		MaxConns:          128,
		// A deliberately tiny summary class so the flood is guaranteed to
		// shed while lookups keep flowing.
		Summary: ClassLimits{RPS: 50, Burst: 10, Queue: 4, MaxWait: 5 * time.Millisecond},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srvCtx, srvCancel := context.WithCancel(context.Background())
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(srvCtx, ln) }()

	attackCtx, stopAttacks := context.WithCancel(context.Background())
	var (
		wg         sync.WaitGroup
		mixed      faults.AttackStats
		lookups    faults.AttackStats
		garbage    faults.AttackStats
		lorisCut   int64
		latMu      sync.Mutex
		lookupLats []time.Duration
	)
	wg.Add(5)
	go func() {
		defer wg.Done()
		mixed = faults.Flood(attackCtx, faults.FloodConfig{Addr: addr, Workers: 4, Seed: 0xf100d})
	}()
	go func() {
		defer wg.Done()
		lookups = faults.Flood(attackCtx, faults.FloodConfig{
			Addr: addr, Workers: 4, Seed: 0xb10c,
			Paths: lookupPaths,
			OnLatency: func(d time.Duration) {
				latMu.Lock()
				lookupLats = append(lookupLats, d)
				latMu.Unlock()
			},
		})
	}()
	go func() {
		defer wg.Done()
		lorisCut = faults.SlowLoris(attackCtx, addr, 16, 20*time.Millisecond)
	}()
	go func() {
		defer wg.Done()
		faults.ConnChurn(attackCtx, addr, 2)
	}()
	go func() {
		defer wg.Done()
		garbage = faults.Malformed(attackCtx, addr, 2, 0xbad)
	}()

	// Let the attack reach steady state before measurement begins, so the
	// monitor's whole campaign runs under fire.
	time.Sleep(300 * time.Millisecond)

	got := studyBytes(t, mkCfg(eng))

	// Keep the pressure on a beat longer, then drain the attackers.
	time.Sleep(100 * time.Millisecond)
	stopAttacks()
	wg.Wait()
	srvCancel()
	if err := <-srvDone; err != nil {
		t.Fatalf("server exited with %v", err)
	}

	// 1. Zero probe rounds lost, measurement unperturbed.
	if !bytes.Equal(got, ref) {
		t.Fatal("study under client chaos diverges from the unattacked same-seed run")
	}
	if ep := eng.Epoch(); ep == nil || ep.Rounds != rounds {
		t.Fatalf("engine epoch = %+v, want all %d rounds sealed", ep, rounds)
	}

	// 2. Sheds were explicit and well-formed. Flood counts a Content-Length
	// mismatch or truncated body as Dropped; demand successes dominate and
	// sheds happened.
	if lookups.OK == 0 {
		t.Fatal("no lookup ever succeeded under chaos")
	}
	if mixed.OK == 0 {
		t.Fatal("no mixed query ever succeeded under chaos")
	}
	snap := reg.Snapshot()
	shed := snap.Counter("serve.http_shed_rate") + snap.Counter("serve.http_shed_overload")
	if shed == 0 && mixed.Shed == 0 {
		t.Fatal("overload never shed: the summary class limits did not bite")
	}

	// 3. p99 lookup latency bounded while shedding. The bound is generous —
	// CI machines under the race detector are slow — but categorical: a
	// hung-connection bug would blow it by orders of magnitude.
	latMu.Lock()
	lats := append([]time.Duration(nil), lookupLats...)
	latMu.Unlock()
	if len(lats) < 50 {
		t.Fatalf("only %d lookup latencies collected", len(lats))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if p99 := lats[len(lats)*99/100]; p99 > time.Second {
		t.Fatalf("lookup p99 = %v under chaos, want <= 1s", p99)
	}

	// 4. The hostile clients got nothing but refusals.
	if garbage.OK != 0 {
		t.Fatalf("%d malformed requests got 2xx", garbage.OK)
	}
	if garbage.Requests > 0 && garbage.Rejected == 0 && garbage.Dropped == 0 {
		t.Fatal("malformed requests neither rejected nor dropped")
	}
	if lorisCut == 0 {
		t.Fatal("no slow-loris connection was ever cut")
	}
}
