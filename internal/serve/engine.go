// Package serve is the overload-resilient live query layer over the
// monitor's per-block state: availability, streaming diurnal class, phase →
// time-of-sleep, and outage flags, queryable while the campaign runs.
//
// The core mechanism is the copy-on-write epoch snapshot. Shards publish
// committed rounds into writer-owned columnar buffers (internal/monitor's
// EpochSink hook); once every shard has committed round r, the engine copies
// the columns into an immutable Epoch and swaps it in with one atomic
// pointer store. Readers load the pointer and query the frozen epoch — they
// never take a lock the probe path can contend on, and a reader holding an
// old epoch keeps a consistent view for as long as it wants.
//
// Liveness under partial monitor state is explicit rather than accidental:
// while a shard is crash-looping, mid-recovery, or quarantined, the engine
// keeps serving the last sealed epoch and reports itself degraded; the HTTP
// layer (http.go) turns that into staleness headers instead of blocking or
// guessing.
//
// Diurnal state is a *streaming* approximation: an incremental DFT at the
// 1 cycle/day bin and its first harmonic, updated O(1) per block per round
// from the published Âs value. The batch FFT over the completed study stays
// the golden oracle (internal/core.DetectDiurnal); the streaming class
// exists so "is this block asleep right now" is answerable mid-campaign.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/metrics"
	"sleepnet/internal/monitor"
	"sleepnet/internal/netsim"
)

// DiurnalClass is the streaming classification of one block.
type DiurnalClass uint8

const (
	// ClassUnknown: not enough committed rounds to attempt classification.
	ClassUnknown DiurnalClass = iota
	// ClassNonDiurnal: no dominant daily periodicity in the stream so far.
	ClassNonDiurnal
	// ClassRelaxed: daily periodicity present (fundamental plus first
	// harmonic carry a meaningful share of the variance).
	ClassRelaxed
	// ClassStrict: the 1 cycle/day component dominates: it carries at least
	// half the variance and is at least twice the first harmonic.
	ClassStrict
)

// String renders the class for reports and JSON.
func (c DiurnalClass) String() string {
	switch c {
	case ClassStrict:
		return "strict"
	case ClassRelaxed:
		return "relaxed"
	case ClassNonDiurnal:
		return "non-diurnal"
	default:
		return "unknown"
	}
}

// Streaming classification thresholds. The batch FFT compares against the
// whole spectrum; the stream only tracks the diurnal bin and its first
// harmonic, so the rules are variance-share tests instead of peak ranking.
const (
	// strictShare: fraction of series variance the fundamental must carry.
	strictShare = 0.5
	// relaxedShare: fraction fundamental+harmonic must carry together.
	relaxedShare = 0.3
	// flatVariance: below this the series is flat and trivially non-diurnal.
	flatVariance = 1e-9
)

// shardState is the writer-side mirror of one monitor shard, owned by the
// engine mutex.
type shardState struct {
	synced      bool
	quarantined bool
	rounds      int // committed rounds published so far
	ids         []netsim.BlockID
	avail       []float64
	long        []float64
	down        []bool
	failed      []int32
	acc         []StreamAcc
}

// engineMetrics caches the engine's instruments (all no-ops without a
// registry).
type engineMetrics struct {
	epochs         *metrics.Counter
	resyncs        *metrics.Counter
	publishIgnored *metrics.Counter
	shardsDown     *metrics.Counter
}

func newEngineMetrics(r *metrics.Registry) *engineMetrics {
	if r == nil {
		return &engineMetrics{}
	}
	return &engineMetrics{
		epochs:         r.Counter("serve.epochs_sealed"),
		resyncs:        r.Counter("serve.resyncs"),
		publishIgnored: r.Counter("serve.publish_ignored"),
		shardsDown:     r.Counter("serve.shards_down"),
	}
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Metrics receives engine counters (optional).
	Metrics *metrics.Registry
	// MinClassifyRounds is how many committed rounds a block needs before
	// the streaming classifier speaks; fewer reports ClassUnknown. Default:
	// one virtual day of rounds (derived from the campaign period).
	MinClassifyRounds int
}

// Engine accumulates published monitor state and seals copy-on-write
// epochs. It implements monitor.EpochSink; readers use Epoch/Status, which
// never block on the writer path.
type Engine struct {
	cfg EngineConfig
	met *engineMetrics

	mu          sync.Mutex // writer state below; readers never take it
	info        monitor.RunInfo
	began       bool
	shards      []*shardState
	basis       Basis
	minClassify int
	sealedRound int

	storeMu sync.Mutex // orders epoch stores from concurrent seals

	epoch       atomic.Pointer[Epoch]
	maxRounds   atomic.Int64
	totalRounds atomic.Int64
	degraded    atomic.Bool
}

// NewEngine creates an engine; attach it via monitor.Config.Sink.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{cfg: cfg, met: newEngineMetrics(cfg.Metrics), sealedRound: -1}
}

// BeginRun implements monitor.EpochSink: it records the campaign shape and
// resets per-shard sync state. The last sealed epoch (from a previous run
// over the same WAL) keeps serving until the new run seals a fresh one —
// that is the mid-recovery degraded mode.
func (e *Engine) BeginRun(info monitor.RunInfo) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.info = info
	e.began = true
	e.shards = make([]*shardState, info.Shards)
	e.basis = NewBasis(info.Period)
	e.minClassify = e.cfg.MinClassifyRounds
	if e.minClassify <= 0 {
		e.minClassify = e.basis.DefaultMinClassify() // one virtual day
	}
	e.sealedRound = -1
	e.totalRounds.Store(int64(info.Rounds))
}

// ResyncShard implements monitor.EpochSink: it replaces the shard's mirror
// with state rebuilt from the committed series. Cold path (attempt starts
// and recoveries only).
func (e *Engine) ResyncShard(shard, nextRound int, blocks []monitor.PubBlock) {
	e.mu.Lock()
	if !e.began || shard < 0 || shard >= len(e.shards) {
		e.met.publishIgnored.Inc()
		e.mu.Unlock()
		return
	}
	st := &shardState{
		synced: true,
		rounds: nextRound,
		ids:    make([]netsim.BlockID, len(blocks)),
		avail:  make([]float64, len(blocks)),
		long:   make([]float64, len(blocks)),
		down:   make([]bool, len(blocks)),
		failed: make([]int32, len(blocks)),
		acc:    make([]StreamAcc, len(blocks)),
	}
	for i := range blocks {
		b := &blocks[i]
		st.ids[i] = b.ID
		if len(b.Short) > 0 {
			st.avail[i] = b.Short[len(b.Short)-1]
		}
		st.long[i] = b.Long
		st.down[i] = b.Down
		st.failed[i] = int32(b.Failed)
	}
	// Rebuild the spectral accumulators round-major so the float op order
	// matches incremental publication exactly.
	for r := 0; r < nextRound; r++ {
		c1, s1, c2, s2 := e.basis.Waves(r)
		for i := range blocks {
			if r < len(blocks[i].Short) {
				st.acc[i].Add(blocks[i].Short[r], c1, s1, c2, s2)
			}
		}
	}
	e.shards[shard] = st
	e.met.resyncs.Inc()
	e.noteRounds(nextRound)
	ep := e.sealLocked()
	e.mu.Unlock()
	e.finishSeal(ep)
}

// PublishRound implements monitor.EpochSink: it applies one committed
// round's deltas. Hot path — O(shard blocks) arithmetic under the writer
// mutex, no allocation.
func (e *Engine) PublishRound(shard, round int, deltas []monitor.RoundPub) {
	e.mu.Lock()
	if !e.began || shard < 0 || shard >= len(e.shards) {
		e.met.publishIgnored.Inc()
		e.mu.Unlock()
		return
	}
	st := e.shards[shard]
	if st == nil || !st.synced || len(deltas) != len(st.ids) || round != st.rounds {
		// A replayed round (engine already covered it via resync) or a gap
		// (impossible through the shard contract, but never corrupt state
		// over it): drop the publication, the next resync reconciles.
		e.met.publishIgnored.Inc()
		e.mu.Unlock()
		return
	}
	c1, s1, c2, s2 := e.basis.Waves(round)
	for i := range deltas {
		d := &deltas[i]
		st.avail[i] = d.Avail
		st.long[i] = d.Long
		st.acc[i].Add(d.Avail, c1, s1, c2, s2)
		switch d.Event {
		case monitor.PubEventDown:
			st.down[i] = true
		case monitor.PubEventUp:
			st.down[i] = false
		}
		if d.Failed {
			st.failed[i]++
		}
	}
	st.rounds = round + 1
	e.noteRounds(st.rounds)
	ep := e.sealLocked()
	e.mu.Unlock()
	e.finishSeal(ep)
}

// ShardDown implements monitor.EpochSink: the shard quarantined and will
// publish nothing more this run. The engine keeps serving the last epoch
// and reports itself degraded.
func (e *Engine) ShardDown(shard int) {
	e.mu.Lock()
	if shard >= 0 && shard < len(e.shards) && e.shards[shard] != nil {
		e.shards[shard].quarantined = true
	}
	// The quarantined shard no longer holds the floor down: shards that
	// already committed past it may now be sealable.
	ep := e.sealLocked()
	e.mu.Unlock()
	e.met.shardsDown.Inc()
	e.degraded.Store(true)
	e.finishSeal(ep)
}

// noteRounds advances the high-water mark of committed rounds (locked).
func (e *Engine) noteRounds(rounds int) {
	if int64(rounds) > e.maxRounds.Load() {
		e.maxRounds.Store(int64(rounds))
	}
}

// sealLocked prepares a new epoch when every shard has committed past the
// current one, returning nil when there is nothing to seal. Column copies
// happen under the writer mutex (so publishers see a consistent cut);
// classification — the expensive part — runs in finishSeal, outside the
// mutex, on the epoch's own copies, paid by the publishing shard.
func (e *Engine) sealLocked() *Epoch {
	floor := -1
	for _, st := range e.shards {
		if st == nil || !st.synced {
			return nil // not all shards reporting yet: no epoch to seal
		}
		if st.quarantined {
			continue // frozen at its last committed round; floor ignores it
		}
		if floor < 0 || st.rounds < floor {
			floor = st.rounds
		}
	}
	if floor <= e.sealedRound || floor <= 0 {
		return nil
	}
	e.sealedRound = floor

	total := 0
	for _, st := range e.shards {
		total += len(st.ids)
	}
	ep := &Epoch{
		Rounds:      floor,
		MaxRounds:   int(e.maxRounds.Load()),
		TotalRounds: e.info.Rounds,
		Time:        e.info.Start.Add(time.Duration(floor-1) * e.info.Period),
		Start:       e.info.Start,
		ids:         make([]netsim.BlockID, 0, total),
		avail:       make([]float64, 0, total),
		long:        make([]float64, 0, total),
		down:        make([]bool, 0, total),
		failed:      make([]int32, 0, total),
		acc:         make([]StreamAcc, 0, total),
		class:       make([]DiurnalClass, total),
		phase:       make([]float64, total),
		peakUTC:     make([]float64, total),
		sleepUTC:    make([]float64, total),
		minClassify: e.minClassify,
	}
	// Shards hold contiguous slices of the global sorted block order, so
	// concatenating in shard order yields a globally sorted epoch.
	for _, st := range e.shards {
		ep.ids = append(ep.ids, st.ids...)
		ep.avail = append(ep.avail, st.avail...)
		ep.long = append(ep.long, st.long...)
		ep.down = append(ep.down, st.down...)
		ep.failed = append(ep.failed, st.failed...)
		ep.acc = append(ep.acc, st.acc...)
	}
	e.met.epochs.Inc()
	return ep
}

// finishSeal classifies the epoch's blocks (outside the writer mutex) and
// publishes it, never letting an older epoch overwrite a newer one. A nil
// epoch (nothing sealed) is a no-op.
func (e *Engine) finishSeal(ep *Epoch) {
	if ep == nil {
		return
	}
	startHour := startOfDayHour(ep.Start)
	for i := range ep.acc {
		class, phase := ep.acc[i].Classify(ep.minClassify)
		ep.class[i] = class
		if class == ClassStrict || class == ClassRelaxed {
			ep.phase[i] = phase
			// peakSleepUTC maps the phase (hours after series start) through
			// the campaign's start-of-day offset to UTC time-of-day.
			ep.peakUTC[i], ep.sleepUTC[i] = peakSleepUTC(phase, startHour)
		}
	}
	ep.acc = nil // classification done; drop the accumulator copy

	e.storeMu.Lock()
	if cur := e.epoch.Load(); cur == nil || cur.Rounds < ep.Rounds {
		e.epoch.Store(ep)
	}
	e.storeMu.Unlock()
}

// Epoch returns the latest sealed epoch, or nil before the first seal.
// Lock-free: one atomic pointer load.
func (e *Engine) Epoch() *Epoch { return e.epoch.Load() }

// Status is the engine's serving posture, computed without touching the
// writer mutex.
type Status struct {
	// Ready: at least one epoch is sealed and queryable.
	Ready bool `json:"ready"`
	// Epoch is the sealed epoch's round floor (0 when not ready).
	Epoch int `json:"epoch"`
	// MaxRounds is the most advanced shard's committed round count.
	MaxRounds int `json:"max_rounds"`
	// TotalRounds is the campaign length.
	TotalRounds int `json:"total_rounds"`
	// Degraded: a shard quarantined (or the monitor died); the epoch may be
	// permanently stale.
	Degraded bool `json:"degraded"`
	// StaleRounds is how many committed rounds the epoch lags the most
	// advanced shard.
	StaleRounds int `json:"stale_rounds"`
}

// Status reports the engine's current posture (lock-free).
func (e *Engine) Status() Status {
	s := Status{
		MaxRounds:   int(e.maxRounds.Load()),
		TotalRounds: int(e.totalRounds.Load()),
		Degraded:    e.degraded.Load(),
	}
	if ep := e.epoch.Load(); ep != nil {
		s.Ready = true
		s.Epoch = ep.Rounds
		s.StaleRounds = s.MaxRounds - ep.Rounds
	}
	return s
}

// SetDegraded forces the degraded flag — the CLI uses it when the monitor
// exits fatally while the server keeps answering from the last epoch.
func (e *Engine) SetDegraded() { e.degraded.Store(true) }
