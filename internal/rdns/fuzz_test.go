package rdns

import (
	"strings"
	"testing"
)

// FuzzClassify throws arbitrary reverse names at the keyword classifier and
// checks its invariants, mirroring the icmp FuzzParse pattern: no panics,
// deterministic output, features drawn only from the kept keywords in
// canonical order, the 1/15th suppression rule honored, and the
// synthesizer's Domain never injecting features through the zone name. Run
// with `go test -fuzz=FuzzClassify ./internal/rdns`.
func FuzzClassify(f *testing.F) {
	f.Add("dhcp-dialup-001.example.com", "host-001.example.net")
	f.Add("STA-007.big-isp.org", "")
	f.Add("dyn.dyn.dyn", "cable-res-9")
	f.Add("University of Pakistan", "wireless-sql-gw")
	f.Add(strings.Repeat("dsl", 100), "\x00\xff not a hostname \t")

	kept := make(map[string]bool, len(KeptKeywords))
	for _, kw := range KeptKeywords {
		kept[kw] = true
	}
	order := make(map[string]int, len(ConsideredKeywords))
	for i, kw := range ConsideredKeywords {
		order[kw] = i
	}

	f.Fuzz(func(t *testing.T, a, b string) {
		// FeaturesOf: deterministic, canonical order, real substrings.
		fa := FeaturesOf(a)
		if again := FeaturesOf(a); len(again) != len(fa) {
			t.Fatalf("FeaturesOf(%q) not deterministic: %v vs %v", a, fa, again)
		}
		low := strings.ToLower(a)
		for i, kw := range fa {
			if _, known := order[kw]; !known {
				t.Fatalf("FeaturesOf(%q) produced unknown keyword %q", a, kw)
			}
			if !strings.Contains(low, kw) {
				t.Fatalf("FeaturesOf(%q) claims %q which is not a substring", a, kw)
			}
			if i > 0 && order[fa[i-1]] >= order[kw] {
				t.Fatalf("FeaturesOf(%q) out of canonical order: %v", a, fa)
			}
		}

		// ClassifyBlock: structural invariants over a mixed block.
		names := []string{a, b, "", a + "." + b, strings.ToUpper(a)}
		cls := ClassifyBlock(names)
		wantNamed := 0
		for _, n := range names {
			if n != "" {
				wantNamed++
			}
		}
		if cls.Named != wantNamed {
			t.Fatalf("Named = %d, want %d", cls.Named, wantNamed)
		}
		max := 0
		for _, c := range cls.Counts {
			if c > max {
				max = c
			}
		}
		prev := -1
		for _, feat := range cls.Features {
			if !kept[feat] {
				t.Fatalf("Features contains non-kept keyword %q (%v)", feat, cls.Features)
			}
			if DiscardedKeywords[feat] {
				t.Fatalf("Features contains discarded keyword %q", feat)
			}
			c := cls.Counts[feat]
			if c == 0 {
				t.Fatalf("feature %q has zero count", feat)
			}
			if c*suppressionRatio < max {
				t.Fatalf("feature %q (count %d) survived below the 1/%d suppression floor (max %d)",
					feat, c, suppressionRatio, max)
			}
			if o := order[feat]; o <= prev {
				t.Fatalf("Features out of canonical order: %v", cls.Features)
			} else {
				prev = o
			}
		}

		// Domain must never inject classification features via the zone.
		if got := FeaturesOf(Domain(a)); len(got) != 0 {
			t.Fatalf("Domain(%q) = %q injects features %v", a, Domain(a), got)
		}
	})
}
