package rdns

import (
	"strings"
	"testing"

	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

func TestFeaturesOf(t *testing.T) {
	cases := []struct {
		name string
		want []string
	}{
		{"dhcp-dialup-001.example.com", []string{"dhcp", "dial"}},
		{"adsl-042.isp.net", []string{"dsl"}},
		{"static-007.isp.net", []string{"sta"}},
		{"host-001.isp.net", nil},
		{"DYNAMIC-9.ISP.NET", []string{"dyn"}},
		{"", nil},
	}
	for _, c := range cases {
		got := FeaturesOf(c.name)
		if len(got) != len(c.want) {
			t.Errorf("FeaturesOf(%q) = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("FeaturesOf(%q) = %v, want %v", c.name, got, c.want)
			}
		}
	}
}

func TestClassifyBlockBasic(t *testing.T) {
	names := make([]string, 256)
	for i := 0; i < 200; i++ {
		names[i] = "adsl-line.isp.net"
	}
	c := ClassifyBlock(names)
	if len(c.Features) != 1 || c.Features[0] != "dsl" {
		t.Fatalf("Features = %v", c.Features)
	}
	if c.Named != 200 || c.Counts["dsl"] != 200 {
		t.Fatalf("classification = %+v", c)
	}
	if !c.HasFeature("dsl") || c.HasFeature("dyn") || c.Multi() {
		t.Fatal("feature predicates wrong")
	}
}

func TestClassifyBlockSuppression(t *testing.T) {
	names := make([]string, 256)
	for i := 0; i < 150; i++ {
		names[i] = "dynamic-host.isp.net"
	}
	// 9 dsl names: 9*15 = 135 < 150 -> suppressed.
	for i := 150; i < 159; i++ {
		names[i] = "adsl-line.isp.net"
	}
	// 30 cable names: 30*15 = 450 >= 150 -> kept.
	for i := 159; i < 189; i++ {
		names[i] = "cable-modem.isp.net"
	}
	c := ClassifyBlock(names)
	if c.HasFeature("dsl") {
		t.Fatalf("dsl should be suppressed: %v", c.Features)
	}
	if !c.HasFeature("dyn") || !c.HasFeature("cable") {
		t.Fatalf("Features = %v", c.Features)
	}
	if !c.Multi() {
		t.Fatal("block should be multi-feature")
	}
}

func TestClassifyBlockDiscardsStarredKeywords(t *testing.T) {
	names := make([]string, 256)
	for i := 0; i < 100; i++ {
		names[i] = "wireless-ap.isp.net"
	}
	c := ClassifyBlock(names)
	if len(c.Features) != 0 {
		t.Fatalf("wireless must be discarded, got %v", c.Features)
	}
	if c.Counts["wireless"] != 100 {
		t.Fatal("count should still be recorded")
	}
}

func TestClassifyBlockEmpty(t *testing.T) {
	c := ClassifyBlock(make([]string, 256))
	if c.Named != 0 || len(c.Features) != 0 {
		t.Fatalf("empty block = %+v", c)
	}
	c = ClassifyBlock(nil)
	if len(c.Features) != 0 {
		t.Fatal("nil names")
	}
}

func TestSynthesizerRates(t *testing.T) {
	s := NewSynthesizer(42)
	var withFeature, multi, total int
	for i := 0; i < 3000; i++ {
		id := netsim.MakeBlockID(byte(i>>16), byte(i>>8), byte(i))
		names := s.BlockNames(id, "dsl", "isp.example.net")
		c := ClassifyBlock(names)
		total++
		if len(c.Features) > 0 {
			withFeature++
		}
		if c.Multi() {
			multi++
		}
	}
	fFrac := float64(withFeature) / float64(total)
	mFrac := float64(multi) / float64(total)
	if fFrac < 0.42 || fFrac > 0.51 {
		t.Fatalf("feature fraction = %v, want ~0.463", fFrac)
	}
	if mFrac < 0.08 || mFrac > 0.15 {
		t.Fatalf("multi fraction = %v, want ~0.114", mFrac)
	}
}

func TestSynthesizerKeywordMatchesLinkType(t *testing.T) {
	s := &Synthesizer{NamedFrac: 1, MultiFrac: 0, Seed: 7}
	for link, kw := range map[string]string{
		"dsl": "dsl", "dyn": "dyn", "dial": "dial", "cable": "cable",
		"dhcp": "dhcp", "ppp": "ppp", "sta": "sta", "srv": "srv", "res": "res",
	} {
		id := netsim.MakeBlockID(9, 9, 9)
		c := ClassifyBlock(s.BlockNames(id, link, "isp.example.net"))
		if !c.HasFeature(kw) {
			t.Errorf("link %q: features %v missing %q", link, c.Features, kw)
		}
	}
}

func TestSynthesizerDeterministic(t *testing.T) {
	s := NewSynthesizer(5)
	id := netsim.MakeBlockID(1, 2, 3)
	a := s.BlockNames(id, "cable", "x.net")
	b := s.BlockNames(id, "cable", "x.net")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthesis must be deterministic")
		}
	}
}

func TestDomainSanitization(t *testing.T) {
	// "Pakistan" contains "sta": the domain must not leak it.
	d := Domain("Pakistan Telecom")
	for _, kw := range ConsideredKeywords {
		if strings.Contains(d, kw) {
			t.Fatalf("domain %q leaks keyword %q", d, kw)
		}
	}
	if Domain("") != "example.net" {
		t.Fatal("empty org domain")
	}
	if got := Domain("Acme Broadband"); got != "acme-broadband.example.net" {
		t.Fatalf("Domain = %q", got)
	}
}

func TestWorldDomainsNeverLeakKeywords(t *testing.T) {
	// Across the whole synthetic world, generic-style names must classify
	// to nothing: the domain part must never contribute features.
	w, err := world.Generate(world.Config{Blocks: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, isp := range w.ISPs {
		d := Domain(isp.Name)
		for _, kw := range ConsideredKeywords {
			if strings.Contains(d, kw) {
				t.Fatalf("ISP %q domain %q leaks %q", isp.Name, d, kw)
			}
		}
	}
}

func TestKeywordTables(t *testing.T) {
	if len(ConsideredKeywords) != 16 {
		t.Fatalf("considered = %d, want 16", len(ConsideredKeywords))
	}
	if len(KeptKeywords) != 9 {
		t.Fatalf("kept = %d, want 9", len(KeptKeywords))
	}
	n := 0
	for range DiscardedKeywords {
		n++
	}
	if n != 7 {
		t.Fatalf("discarded = %d, want 7", n)
	}
	for _, kw := range KeptKeywords {
		if DiscardedKeywords[kw] {
			t.Fatalf("%q both kept and discarded", kw)
		}
	}
}
