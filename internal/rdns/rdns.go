// Package rdns synthesizes and classifies reverse DNS names, implementing
// §2.3.3 of the paper. Classification matches each address's reverse name
// non-exclusively against the 16 considered keywords (7 of which the paper
// discards as too rare), builds a per-block feature vector over 256
// addresses, suppresses features rarer than 1/15th of the dominant one, and
// labels the block with everything that survives.
//
// Synthesis runs the other direction for the simulated world: given a
// block's true access technology it produces names a real ISP of that kind
// would publish, including the realities the paper reports — only ~46% of
// blocks carry any keyword at all, and ~11% carry more than one.
package rdns

import (
	"fmt"
	"strings"

	"sleepnet/internal/netsim"
)

// ConsideredKeywords are the 16 keywords of §2.3.3, in the paper's order.
// The starred seven (rtr, gw, ded, client, sql, wireless, wifi) are
// discarded because they dominate in fewer than 1000 blocks.
var ConsideredKeywords = []string{
	"sta", "dyn", "srv", "rtr", "gw", "dhcp", "ppp", "dsl",
	"dial", "cable", "ded", "res", "client", "sql", "wireless", "wifi",
}

// DiscardedKeywords is the starred subset.
var DiscardedKeywords = map[string]bool{
	"rtr": true, "gw": true, "ded": true, "client": true,
	"sql": true, "wireless": true, "wifi": true,
}

// KeptKeywords are the nine keywords the analysis retains (Fig 17).
var KeptKeywords = []string{"sta", "dyn", "srv", "dhcp", "ppp", "dsl", "dial", "cable", "res"}

// suppressionRatio drops features rarer than 1/15th of the dominant one.
const suppressionRatio = 15

// FeaturesOf returns the keywords found in one reverse name
// (non-exclusive substring matching, lowercased). A name like
// "dhcp-dialup-001.example.com" yields both "dhcp" and "dial".
func FeaturesOf(name string) []string {
	n := strings.ToLower(name)
	var out []string
	for _, kw := range ConsideredKeywords {
		if strings.Contains(n, kw) {
			out = append(out, kw)
		}
	}
	return out
}

// BlockClassification is the outcome of classifying one /24.
type BlockClassification struct {
	// Features are the block's surviving labels (kept keywords only),
	// in ConsideredKeywords order.
	Features []string
	// Counts maps every matched keyword (including discarded ones) to the
	// number of addresses carrying it.
	Counts map[string]int
	// Named is the number of addresses that had a reverse name at all.
	Named int
}

// HasFeature reports whether the block carries the feature.
func (c BlockClassification) HasFeature(f string) bool {
	for _, x := range c.Features {
		if x == f {
			return true
		}
	}
	return false
}

// Multi reports whether the block carries more than one surviving feature.
func (c BlockClassification) Multi() bool { return len(c.Features) > 1 }

// ClassifyBlock classifies a /24 given the reverse names of its addresses
// (empty strings mean no PTR record). It applies the paper's rules: count
// features across addresses, suppress minor features below 1/15th of the
// most frequent, discard the seven starred keywords, and label with the
// rest.
func ClassifyBlock(names []string) BlockClassification {
	out := BlockClassification{Counts: make(map[string]int)}
	for _, n := range names {
		if n == "" {
			continue
		}
		out.Named++
		for _, f := range FeaturesOf(n) {
			out.Counts[f]++
		}
	}
	max := 0
	for _, c := range out.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return out
	}
	for _, kw := range ConsideredKeywords {
		c := out.Counts[kw]
		if c == 0 || DiscardedKeywords[kw] {
			continue
		}
		if c*suppressionRatio < max {
			continue // suppressed minor feature
		}
		out.Features = append(out.Features, kw)
	}
	return out
}

// linkKeywordToken maps a world link type to the name fragment an ISP of
// that kind typically publishes.
var linkKeywordToken = map[string]string{
	"sta":   "static",
	"dyn":   "dynamic",
	"srv":   "srv",
	"dhcp":  "dhcp",
	"ppp":   "ppp",
	"dsl":   "adsl",
	"dial":  "dialup",
	"cable": "cable",
	"res":   "res",
}

// Synthesizer produces deterministic reverse names for simulated blocks.
type Synthesizer struct {
	// NamedFrac is the fraction of blocks that publish keyword-bearing
	// names at all (paper: 46.3% of blocks have some feature).
	NamedFrac float64
	// MultiFrac is the fraction of blocks that publish names with two
	// features (paper: 11.4% have multiple).
	MultiFrac float64
	Seed      uint64
}

// NewSynthesizer returns a Synthesizer with the paper's observed rates.
func NewSynthesizer(seed uint64) *Synthesizer {
	return &Synthesizer{NamedFrac: 0.463, MultiFrac: 0.114, Seed: seed}
}

// secondFeature pairs a primary link keyword with a plausible companion.
var secondFeature = map[string]string{
	"dyn":   "dhcp",
	"dhcp":  "dynamic",
	"dsl":   "dynamic",
	"ppp":   "adsl",
	"dial":  "ppp",
	"cable": "res",
	"res":   "cable",
	"sta":   "srv",
	"srv":   "static",
}

// BlockNames synthesizes the 256 reverse names for a block with the given
// true link type and an ISP domain. Depending on the block's deterministic
// draw it emits keyword names, dual-keyword names, or generic names with no
// keywords (the unclassifiable majority).
func (s *Synthesizer) BlockNames(id netsim.BlockID, linkType, domain string) []string {
	names := make([]string, 256)
	u := hashUnit(s.Seed, uint64(id), 1)
	token := linkKeywordToken[linkType]
	if token == "" {
		token = "host"
	}
	style := styleGeneric
	switch {
	case u < s.MultiFrac:
		style = styleMulti
	case u < s.NamedFrac:
		style = styleKeyword
	}
	for h := 0; h < 256; h++ {
		// Some addresses have no PTR at all.
		if hashUnit(s.Seed, uint64(id), uint64(h), 2) < 0.15 {
			continue
		}
		switch style {
		case styleMulti:
			second := secondFeature[linkType]
			if second == "" {
				second = "dynamic"
			}
			names[h] = fmt.Sprintf("%s-%s-%03d.%s", token, second, h, domain)
		case styleKeyword:
			names[h] = fmt.Sprintf("%s-%03d.%s", token, h, domain)
		default:
			names[h] = fmt.Sprintf("host-%03d.%s", h, domain)
		}
	}
	return names
}

type nameStyle int

const (
	styleGeneric nameStyle = iota
	styleKeyword
	styleMulti
)

// Domain derives a plausible ISP reverse-zone domain from an organization
// name ("Brazil Telecom" -> "brazil-telecom.example.net"). Tokens that
// accidentally contain a classification keyword (e.g. "Pakistan" contains
// "sta") are replaced with a neutral hash so the zone name itself never
// injects features — matching real classifiers, which match on the host
// label, not the operator's zone.
func Domain(org string) string {
	fields := strings.Fields(strings.ToLower(org))
	if len(fields) == 0 {
		return "example.net"
	}
	for i, f := range fields {
		for _, kw := range ConsideredKeywords {
			if strings.Contains(f, kw) {
				fields[i] = fmt.Sprintf("z%06d", uint32(hashUnit(0xd011a1, uint64(len(f)), uint64(f[0]))*999999))
				break
			}
		}
	}
	return strings.Join(fields, "-") + ".example.net"
}

func hashUnit(seed uint64, parts ...uint64) float64 {
	h := seed + 0x9e3779b97f4a7c15
	mix := func(v uint64) uint64 {
		v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		return v ^ (v >> 31)
	}
	h = mix(h)
	for _, p := range parts {
		h = mix(h ^ p)
	}
	return float64(h>>11) / (1 << 53)
}
