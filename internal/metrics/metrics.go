// Package metrics is a dependency-free, concurrency-safe registry of
// counters, gauges, and fixed-bucket histograms for the measurement
// pipeline — the continuously exported signal stream an operator of a
// weeks-long Trinocular-style collector reasons about (probes sent per
// round, retries, rate-limited rounds, breaker trips).
//
// Two properties drive the design:
//
//   - Snapshots are deterministic: instruments are reported sorted by name
//     and carry no wall-clock fields, so two same-seed runs of the fault-free
//     pipeline produce byte-identical serialized snapshots (modulo timing
//     histograms, which Snapshot.Deterministic strips). Snapshots can
//     therefore be asserted in tests and diffed across seeds.
//   - A nil registry is the fast path: every instrument method is safe (and
//     nearly free) on a nil receiver, so uninstrumented pipelines pay one
//     nil-check per event and read no clocks.
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// UnitSeconds marks a histogram as recording wall-clock durations. Such
// histograms are stripped by Snapshot.Deterministic, because their bucket
// counts depend on host speed rather than on the seeded computation.
const UnitSeconds = "seconds"

// Counter is a monotonically increasing int64. All methods are safe on a
// nil receiver (no-ops), which is how the uninstrumented path stays free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 value. Safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= Bounds[i]; one implicit overflow bucket counts the rest.
// Bounds are frozen at registration, so snapshots of the same registry
// layout are structurally identical. Safe on a nil receiver.
type Histogram struct {
	bounds  []float64
	unit    string
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 CAS accumulator
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Time starts a stopwatch and returns the function that stops it, recording
// the elapsed time in seconds. On a nil histogram neither end reads a clock.
func (h *Histogram) Time() func() {
	if h == nil {
		return noopStop
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

func noopStop() {}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry holds named instruments. The zero value is not usable; call New.
// A nil *Registry is valid everywhere and hands out nil instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given unit and
// bucket upper bounds on first use. Bounds must be sorted ascending; they are
// copied and frozen on creation (later calls with different bounds return
// the original instrument unchanged).
func (r *Registry) Histogram(name, unit string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, unit: unit, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// ExpBuckets returns n bucket bounds starting at start, each factor times
// the previous — the standard shape for sizes and latencies.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Counts[i] counts
// observations <= Bounds[i]; the final extra entry is the overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observed value (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, sorted by name within each
// instrument kind. It carries no timestamps: serializing the snapshot of the
// same computation twice yields identical bytes (strip timing histograms
// with Deterministic first when the computation is timed).
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. A nil registry yields the
// zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Unit:   h.unit,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Deterministic returns a copy of the snapshot without wall-clock-derived
// content (histograms with unit "seconds"), leaving only values that are a
// pure function of the seeded computation — the part that is byte-identical
// across same-seed runs.
func (s Snapshot) Deterministic() Snapshot {
	out := Snapshot{Counters: s.Counters, Gauges: s.Gauges}
	for _, h := range s.Histograms {
		if h.Unit == UnitSeconds {
			continue
		}
		out.Histograms = append(out.Histograms, h)
	}
	return out
}

// Counter returns the value of the named counter in the snapshot (0 when
// absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Lookup returns the value of the named counter and whether it is present.
func (s Snapshot) Lookup(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Empty reports whether the snapshot holds no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
