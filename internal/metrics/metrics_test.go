package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	h := r.Histogram("z", "", []float64{1, 2})
	h.Observe(1.5)
	stop := h.Time()
	stop()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("probes")
	c.Inc()
	c.Add(9)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("probes") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("temp")
	g.Set(2.25)
	if g.Value() != 2.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("sizes", "", []float64{10, 100, 1000})
	for _, v := range []float64{1, 10, 11, 100, 5000, math.NaN()} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	// NaN dropped; <=10: {1,10}, <=100: {11,100}, <=1000: {}, overflow: {5000}.
	wantCounts := []int64{2, 2, 0, 1}
	if len(hv.Counts) != len(wantCounts) {
		t.Fatalf("counts len = %d, want %d", len(hv.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, hv.Counts[i], w, hv)
		}
	}
	if hv.Count != 5 || hv.Sum != 1+10+11+100+5000 {
		t.Fatalf("count=%d sum=%v", hv.Count, hv.Sum)
	}
	if got := hv.Mean(); math.Abs(got-5122.0/5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSnapshotSortedAndDeterministicSerialization(t *testing.T) {
	build := func() Snapshot {
		r := New()
		// Register in scrambled order; snapshots must sort by name.
		r.Counter("zebra").Add(2)
		r.Counter("alpha").Add(1)
		r.Gauge("mid").Set(0.5)
		r.Histogram("hist.b", "", []float64{1}).Observe(0.5)
		r.Histogram("hist.a", UnitSeconds, []float64{1}).Observe(0.25)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	var b1, b2 bytes.Buffer
	if err := s1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshots of identical computations differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if s1.Counters[0].Name != "alpha" || s1.Counters[1].Name != "zebra" {
		t.Fatalf("counters not sorted: %+v", s1.Counters)
	}
	if s1.Histograms[0].Name != "hist.a" {
		t.Fatalf("histograms not sorted: %+v", s1.Histograms)
	}
}

func TestDeterministicStripsTimingHistograms(t *testing.T) {
	r := New()
	r.Counter("kept").Inc()
	r.Histogram("fft.size", "", []float64{64, 1024}).Observe(512)
	stop := r.Histogram("write.seconds", UnitSeconds, ExpBuckets(1e-6, 10, 8)).Time()
	stop()
	det := r.Snapshot().Deterministic()
	if len(det.Histograms) != 1 || det.Histograms[0].Name != "fft.size" {
		t.Fatalf("deterministic histograms = %+v", det.Histograms)
	}
	if det.Counter("kept") != 1 {
		t.Fatal("counters must survive Deterministic")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", "", []float64{2, 4}).Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("a") != 7 || back.Gauges[0].Value != 1.5 || back.Histograms[0].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}
