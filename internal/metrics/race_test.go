package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentStress hammers one shared registry from many
// goroutines — registration by name (exercising the map lock) interleaved
// with hot-path updates — then asserts the totals. Run under -race this is
// the machine check of the package's concurrency claims.
func TestRegistryConcurrentStress(t *testing.T) {
	const (
		workers = 16
		iters   = 2000
	)
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Private and shared names mix lock-path and atomic-path work.
			own := r.Counter(fmt.Sprintf("worker.%d", w))
			for i := 0; i < iters; i++ {
				r.Counter("shared.events").Inc()
				own.Inc()
				r.Gauge("shared.level").Set(float64(i))
				r.Histogram("shared.sizes", "", []float64{10, 100, 1000}).Observe(float64(i % 2000))
				if i%64 == 0 {
					_ = r.Snapshot() // concurrent readers must be safe too
				}
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counter("shared.events"); got != workers*iters {
		t.Fatalf("shared.events = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := snap.Counter(fmt.Sprintf("worker.%d", w)); got != iters {
			t.Fatalf("worker.%d = %d, want %d", w, got, iters)
		}
	}
	var hist HistogramValue
	for _, h := range snap.Histograms {
		if h.Name == "shared.sizes" {
			hist = h
		}
	}
	if hist.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hist.Count, workers*iters)
	}
	var inBuckets int64
	for _, c := range hist.Counts {
		inBuckets += c
	}
	if inBuckets != hist.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, hist.Count)
	}
	// Sum of integers below 2^53 is exact regardless of accumulation order.
	perWorker := int64(0)
	for i := 0; i < iters; i++ {
		perWorker += int64(i % 2000)
	}
	if int64(hist.Sum) != perWorker*workers {
		t.Fatalf("histogram sum = %v, want %d", hist.Sum, perWorker*workers)
	}
}
