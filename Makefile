# Development targets for the sleepnet reproduction.

GO ?= go

.PHONY: all build vet test race check fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: vet, build, and the full test suite under the race
# detector.
check: vet build race

# fuzz runs the icmp parser fuzzer for a short budget.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/icmp
