# Development targets for the sleepnet reproduction.

GO ?= go

.PHONY: all build vet test race lint check fuzz fuzz-rdns fuzz-wal monitor-chaos bench benchdiff

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The analysis suite takes ~10x longer under the race detector, so the
# per-package timeout is raised above go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# lint runs the repo's own static analyzer (cmd/sleeplint) over the whole
# module; it exits nonzero on any finding.
lint:
	$(GO) run ./cmd/sleeplint ./...

# check is the CI gate: vet, build, sleeplint, and the full test suite under
# the race detector.
check: vet build lint race

# fuzz runs the icmp parser fuzzer for a short budget.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/icmp

# fuzz-rdns runs the rDNS keyword-classifier fuzzer for a short budget.
fuzz-rdns:
	$(GO) test -run=^$$ -fuzz=FuzzClassify -fuzztime=30s ./internal/rdns

# fuzz-wal fuzzes the monitor's WAL/snapshot decoders: arbitrary bytes must
# yield either a clean decode or an error chained to ErrCorrupt, never a
# panic or unbounded allocation.
fuzz-wal:
	$(GO) test -run=^$$ -fuzz=FuzzWALDecode -fuzztime=30s ./internal/monitor

# monitor-chaos runs the crash-recovery acceptance property under the race
# detector: injected shard kills, WAL tail corruption, a hard halt, and a
# SIGTERM drain must all converge to a study byte-identical to an
# uninterrupted same-seed run.
monitor-chaos:
	$(GO) test -race -count=1 -run='TestChaosEquivalence|TestGracefulDrainAndResume|TestSIGTERMSoakDrainsCleanly|TestHaltAndResumeFromWAL' ./internal/monitor

# bench runs the top-level paper benchmarks and persists the parsed
# measurements (ns/op, B/op, allocs/op per benchmark) for cross-commit
# regression diffing. The default 300ms benchtime gives sub-100ms
# benchmarks at least 3 iterations, so their numbers are an average rather
# than a single noisy sample; benchjson records the benchtime used in the
# output. BENCH_seed.json is the committed baseline — don't overwrite it in
# day-to-day work; write new measurements to a fresh BENCH_*.json and diff
# with benchdiff. Refreshing the baseline is a deliberate act: rerun on a
# quiet host with BENCH_OUT=BENCH_seed.json and commit the diff explicitly.
BENCHTIME ?= 300ms
BENCH_OUT ?= BENCH_pr6.json
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -o $(BENCH_OUT)

# benchdiff compares a fresh benchmark run against the committed seed
# baseline and exits nonzero when any shared benchmark regressed more than
# 10% on ns/op, B/op, or allocs/op.
benchdiff:
	$(GO) run ./cmd/benchjson -diff BENCH_seed.json $(BENCH_OUT)
