# Development targets for the sleepnet reproduction.

GO ?= go

.PHONY: all build vet test race lint check fuzz fuzz-rdns bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The analysis suite takes ~10x longer under the race detector, so the
# per-package timeout is raised above go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# lint runs the repo's own static analyzer (cmd/sleeplint) over the whole
# module; it exits nonzero on any finding.
lint:
	$(GO) run ./cmd/sleeplint ./...

# check is the CI gate: vet, build, sleeplint, and the full test suite under
# the race detector.
check: vet build lint race

# fuzz runs the icmp parser fuzzer for a short budget.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/icmp

# fuzz-rdns runs the rDNS keyword-classifier fuzzer for a short budget.
fuzz-rdns:
	$(GO) test -run=^$$ -fuzz=FuzzClassify -fuzztime=30s ./internal/rdns

# bench runs the top-level paper benchmarks once each and persists the
# parsed measurements (ns/op, B/op, allocs/op per benchmark) as
# BENCH_seed.json for cross-commit regression diffing.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson -o BENCH_seed.json
