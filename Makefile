# Development targets for the sleepnet reproduction.

GO ?= go

.PHONY: all build vet test race lint check fuzz fuzz-rdns bench benchdiff

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The analysis suite takes ~10x longer under the race detector, so the
# per-package timeout is raised above go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# lint runs the repo's own static analyzer (cmd/sleeplint) over the whole
# module; it exits nonzero on any finding.
lint:
	$(GO) run ./cmd/sleeplint ./...

# check is the CI gate: vet, build, sleeplint, and the full test suite under
# the race detector.
check: vet build lint race

# fuzz runs the icmp parser fuzzer for a short budget.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/icmp

# fuzz-rdns runs the rDNS keyword-classifier fuzzer for a short budget.
fuzz-rdns:
	$(GO) test -run=^$$ -fuzz=FuzzClassify -fuzztime=30s ./internal/rdns

# bench runs the top-level paper benchmarks and persists the parsed
# measurements (ns/op, B/op, allocs/op per benchmark) for cross-commit
# regression diffing. The default 300ms benchtime gives sub-100ms
# benchmarks at least 3 iterations, so their numbers are an average rather
# than a single noisy sample; benchjson records the benchtime used in the
# output. BENCH_seed.json is the committed baseline — never overwrite it;
# write new measurements to a fresh BENCH_*.json and diff with benchdiff.
BENCHTIME ?= 300ms
BENCH_OUT ?= BENCH_pr5.json
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -o $(BENCH_OUT)

# benchdiff compares a fresh benchmark run against the committed seed
# baseline and exits nonzero when any shared benchmark regressed more than
# 10% on ns/op, B/op, or allocs/op.
benchdiff:
	$(GO) run ./cmd/benchjson -diff BENCH_seed.json $(BENCH_OUT)
