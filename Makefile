# Development targets for the sleepnet reproduction.

GO ?= go

.PHONY: all build vet test race check fuzz bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: vet, build, and the full test suite under the race
# detector.
check: vet build race

# fuzz runs the icmp parser fuzzer for a short budget.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/icmp

# bench runs the top-level paper benchmarks once each and persists the
# parsed measurements (ns/op, B/op, allocs/op per benchmark) as
# BENCH_seed.json for cross-commit regression diffing.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson -o BENCH_seed.json
