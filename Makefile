# Development targets for the sleepnet reproduction.

GO ?= go

.PHONY: all build vet test race lint lint-fixtures check agree fuzz fuzz-rdns fuzz-wal fuzz-serve monitor-chaos serve-chaos bench benchdiff bench-smoke loadgen

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The analysis suite takes ~10x longer under the race detector, so the
# per-package timeout is raised above go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# lint runs the repo's own static analyzer (cmd/sleeplint) over the whole
# module in audit mode: any rule finding or stale //lint:allow directive
# exits nonzero.
lint:
	$(GO) run ./cmd/sleeplint -allows ./...

# lint-fixtures re-runs the analyzer's own acceptance tests: the golden
# fixture packages (each broken fixture must trigger exactly its `want`
# lines), rule isolation under -rules filtering, and the end-to-end
# meta-test that the built binary exits 1 on every broken fixture.
lint-fixtures:
	$(GO) test -count=1 -run='TestFixturesGolden|TestRuleIsolation' ./internal/lint
	$(GO) test -count=1 -run='TestFixtureExitCodes' ./cmd/sleeplint

# agree runs the streaming-vs-batch agreement gate: the seeded sweep's
# confusion matrices must clear the committed accuracy contract
# (internal/agree/contract.go) and the report must be byte-identical across
# same-seed runs. -count=1 defeats the test cache so the gate always
# re-measures.
agree:
	$(GO) test -count=1 -run='TestAgreementContract|TestAgreementGoldenDeterminism' ./internal/agree

# check is the CI gate: vet, build, sleeplint, the full test suite under
# the race detector, and the streaming-vs-batch agreement contract.
check: vet build lint race agree

# fuzz runs the icmp parser fuzzer for a short budget.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/icmp

# fuzz-rdns runs the rDNS keyword-classifier fuzzer for a short budget.
fuzz-rdns:
	$(GO) test -run=^$$ -fuzz=FuzzClassify -fuzztime=30s ./internal/rdns

# fuzz-wal fuzzes the monitor's WAL/snapshot decoders: arbitrary bytes must
# yield either a clean decode or an error chained to ErrCorrupt, never a
# panic or unbounded allocation.
fuzz-wal:
	$(GO) test -run=^$$ -fuzz=FuzzWALDecode -fuzztime=30s ./internal/monitor

# fuzz-serve fuzzes the HTTP query parser: arbitrary paths and query
# strings must yield either a typed ErrBadRequest or a valid Request,
# never a panic.
fuzz-serve:
	$(GO) test -run=^$$ -fuzz=FuzzParseRequest -fuzztime=30s ./internal/serve

# monitor-chaos runs the crash-recovery acceptance property under the race
# detector: injected shard kills, WAL tail corruption, a hard halt, and a
# SIGTERM drain must all converge to a study byte-identical to an
# uninterrupted same-seed run.
monitor-chaos:
	$(GO) test -race -count=1 -run='TestChaosEquivalence|TestGracefulDrainAndResume|TestSIGTERMSoakDrainsCleanly|TestHaltAndResumeFromWAL' ./internal/monitor

# serve-chaos runs the serving-layer acceptance property under the race
# detector: slow-loris, floods, connection churn, and malformed requests
# against a live monitored campaign must lose zero probe rounds, keep the
# study byte-identical to an unattacked run, and keep lookup p99 bounded
# while lower-priority classes shed.
serve-chaos:
	$(GO) test -race -count=1 -run='TestServeChaosAcceptance' ./internal/serve

# loadgen measures sustained live-socket queries/s against a self-hosted
# 1M-block epoch (see cmd/loadgen for targeting a running server).
loadgen:
	$(GO) run ./cmd/loadgen -duration 3s

# bench runs the top-level paper benchmarks and persists the parsed
# measurements (ns/op, B/op, allocs/op per benchmark) for cross-commit
# regression diffing. The default 300ms benchtime gives sub-100ms
# benchmarks at least 3 iterations, so their numbers are an average rather
# than a single noisy sample; benchjson records the benchtime used in the
# output. BENCH_seed.json is the committed baseline — don't overwrite it in
# day-to-day work; write new measurements to a fresh BENCH_*.json and diff
# with benchdiff. Refreshing the baseline is a deliberate act: rerun on a
# quiet host with BENCH_OUT=BENCH_seed.json and commit the diff explicitly.
BENCHTIME ?= 300ms
BENCH_OUT ?= BENCH_pr10.json
# BENCH_RUNS > 1 repeats every benchmark (go test -count) and records the
# per-metric median plus the ns/op spread — use it when the host is noisy.
BENCH_RUNS ?= 1
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCH_RUNS) . ./internal/monitor | $(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -runs $(BENCH_RUNS) -o $(BENCH_OUT)

# benchdiff compares a fresh benchmark run against the committed seed
# baseline and exits nonzero when any shared benchmark regressed more than
# 10% on ns/op, B/op, or allocs/op. Increases under BENCH_NOISE_NS ns/op
# are never flagged regardless of ratio (absolute noise floor).
BENCH_NOISE_NS ?= 50
benchdiff:
	$(GO) run ./cmd/benchjson -diff -noise-ns $(BENCH_NOISE_NS) BENCH_seed.json $(BENCH_OUT)

# bench-smoke is the CI perf gate for the batched delivery path: the warm
# monitor round (batched and scalar) is re-measured with 3-run medians and
# diffed against the committed BENCH_pr10.json baseline. The 1.5x threshold
# plus the 100 ns/op absolute floor absorbs host-to-host variance while
# still catching a wholesale regression — e.g. the batch path silently
# degrading to per-probe delivery, which roughly doubles the round cost.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkMonitorRoundBatch' -benchmem -benchtime=$(BENCHTIME) -count=3 ./internal/monitor | $(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -runs 3 -o /tmp/bench_smoke.json
	$(GO) run ./cmd/benchjson -diff -threshold 1.5 -noise-ns 100 BENCH_pr10.json /tmp/bench_smoke.json
