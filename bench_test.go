// Package sleepnet's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see DESIGN.md §4 for the experiment
// index), plus ablation benchmarks for the design choices DESIGN.md calls
// out. Benchmarks run the same code paths as cmd/experiments at reduced
// scale and report shape metrics via b.ReportMetric so the reproduced
// quantities are visible in benchmark output:
//
//	go test -bench=. -benchmem
package sleepnet

import (
	"math"
	"sync"
	"testing"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/geo"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

// ---- shared fixtures ----

var (
	benchOnce sync.Once
	// benchErr records a fixture failure so every benchmark sharing the
	// fixture reports it through b.Fatal instead of the Once panicking once
	// and poisoning the rest of the run with nil fixtures.
	benchErr   error
	benchWorld *world.World
	benchStudy *analysis.Study
	benchGeo   *geo.DB
)

// benchFixture measures a 700-block world for 10 days once; the table and
// figure benchmarks then time the analysis step they name.
func benchFixture(b *testing.B) (*world.World, *analysis.Study, *geo.DB) {
	b.Helper()
	benchOnce.Do(func() {
		benchWorld, benchErr = world.Generate(world.Config{Blocks: 700, Seed: 99})
		if benchErr != nil {
			return
		}
		benchStudy, benchErr = analysis.MeasureWorld(benchWorld, analysis.StudyConfig{
			Days:            10,
			Seed:            5,
			RestartInterval: 5*time.Hour + 30*time.Minute,
		})
		if benchErr != nil {
			return
		}
		benchGeo = geo.FromWorld(benchWorld, 0.93, 3)
	})
	if benchErr != nil {
		b.Fatalf("bench fixture: %v", benchErr)
	}
	return benchWorld, benchStudy, benchGeo
}

func sampleBlockBench(b *testing.B, kind string, days int, wantDiurnal bool) {
	b.Helper()
	net := netsim.NewNetwork(1)
	blk := &netsim.Block{ID: netsim.MakeBlockID(10, 0, 1), Seed: 1}
	switch kind {
	case "sparse":
		for h := 0; h < 42; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.735, Seed: uint64(h)}
		}
	case "dense":
		for h := 0; h < 245; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.191, Seed: uint64(h)}
		}
	case "diurnal":
		for h := 0; h < 100; h++ {
			blk.Behaviors[h] = netsim.AlwaysOn{}
		}
		for h := 100; h < 256; h++ {
			blk.Behaviors[h] = netsim.Diurnal{Phase: time.Hour, Duration: 10 * time.Hour, Seed: uint64(h)}
		}
	}
	net.AddBlock(blk)
	pl := core.NewPipeline(net, core.PipelineConfig{
		Start: analysis.DefaultStart, Rounds: analysis.RoundsForDays(days), Seed: 1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	var last *core.BlockRun
	for i := 0; i < b.N; i++ {
		run, err := pl.RunBlock(blk.ID)
		if err != nil {
			b.Fatal(err)
		}
		last = run
	}
	b.StopTimer()
	// The strict class is the meaningful assertion: the relaxed class can
	// fire on low-frequency noise in sparse blocks (see Fig 10's ~25% 1 c/d
	// mass vs 11% strict).
	if got := last.Result.Class == core.StrictDiurnal; got != wantDiurnal {
		b.Fatalf("%s block classified strict=%v, want %v", kind, got, wantDiurnal)
	}
	b.ReportMetric(float64(last.ProbesSent)/(float64(last.Short.Len())*660/3600), "probes/hour")
}

// ---- Figures 1-3, 6: sample blocks ----

func BenchmarkFig1SampleBlockSparse(b *testing.B)  { sampleBlockBench(b, "sparse", 14, false) }
func BenchmarkFig2SampleBlockDense(b *testing.B)   { sampleBlockBench(b, "dense", 14, false) }
func BenchmarkFig3SampleBlockDiurnal(b *testing.B) { sampleBlockBench(b, "diurnal", 14, true) }
func BenchmarkFig6LongFFT(b *testing.B)            { sampleBlockBench(b, "diurnal", 35, true) }

// ---- Figures 4-5, Table 1: estimator validation ----

func estimatorWorld(b *testing.B) (*world.World, core.PipelineConfig) {
	b.Helper()
	w, err := world.Generate(world.Config{Blocks: 80, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.PipelineConfig{Start: analysis.DefaultStart, Rounds: analysis.RoundsForDays(4), Seed: 3}
	return w, cfg
}

func BenchmarkFig4CorrelationShortTerm(b *testing.B) {
	w, cfg := estimatorWorld(b)
	b.ResetTimer()
	var r float64
	for i := 0; i < b.N; i++ {
		res, err := analysis.CompareEstimatorToTruth(w, cfg, analysis.ShortTermEstimate, 0)
		if err != nil {
			b.Fatal(err)
		}
		r = res.R
	}
	b.ReportMetric(r, "corr")
}

func BenchmarkFig5CorrelationOperational(b *testing.B) {
	w, cfg := estimatorWorld(b)
	b.ResetTimer()
	var under float64
	for i := 0; i < b.N; i++ {
		res, err := analysis.CompareEstimatorToTruth(w, cfg, analysis.OperationalEstimate, 0)
		if err != nil {
			b.Fatal(err)
		}
		under = res.UnderFrac
	}
	b.ReportMetric(under, "under-frac")
}

func BenchmarkTable1DiurnalValidation(b *testing.B) {
	w, cfg := estimatorWorld(b)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		v, err := analysis.ValidateDiurnalDetection(w, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		acc = v.Accuracy()
	}
	b.ReportMetric(acc, "accuracy")
}

// ---- Figures 7-9: controlled sweeps ----

func sweepBench(b *testing.B, run func(cfg analysis.SweepConfig) ([]analysis.SweepPoint, error)) {
	cfg := analysis.SweepConfig{Batches: 2, PerBatch: 5, Weeks: 2, Seed: 7, Workers: 0}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		pts, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mean = pts[len(pts)-1].Mean
	}
	b.ReportMetric(mean, "last-accuracy")
}

func BenchmarkFig7SweepDiurnalCount(b *testing.B) {
	sweepBench(b, func(cfg analysis.SweepConfig) ([]analysis.SweepPoint, error) {
		return analysis.SweepDiurnalCount([]int{10, 100}, cfg)
	})
}

func BenchmarkFig8SweepPhaseSpread(b *testing.B) {
	sweepBench(b, func(cfg analysis.SweepConfig) ([]analysis.SweepPoint, error) {
		return analysis.SweepPhaseSpread([]float64{0, 20}, cfg)
	})
}

func BenchmarkFig9SweepDurationNoise(b *testing.B) {
	sweepBench(b, func(cfg analysis.SweepConfig) ([]analysis.SweepPoint, error) {
		return analysis.SweepDurationSigma([]float64{0, 8}, cfg)
	})
}

// ---- Table 2: cross-site agreement ----

func BenchmarkTable2CrossSite(b *testing.B) {
	w, st, _ := benchFixture(b)
	st2, err := analysis.MeasureWorld(w, analysis.StudyConfig{Days: 10, Seed: 1234})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var dis float64
	for i := 0; i < b.N; i++ {
		cs, err := analysis.CompareSites(st, st2)
		if err != nil {
			b.Fatal(err)
		}
		dis = cs.StrongDisagree
	}
	b.ReportMetric(dis, "strong-disagree")
}

// ---- Figure 10: frequency distribution ----

func BenchmarkFig10FrequencyCDF(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var daily float64
	for i := 0; i < b.N; i++ {
		fd, err := st.FrequencyCDF()
		if err != nil {
			b.Fatal(err)
		}
		daily = fd.FracDaily
	}
	b.ReportMetric(daily, "daily-mass")
}

// ---- Figure 11: long-term trend ----

func BenchmarkFig11LongTermTrend(b *testing.B) {
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		pts, err := analysis.LongTermTrend(2, 60, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		frac = pts[0].FracDiurnal
	}
	b.ReportMetric(frac, "frac-diurnal")
}

// ---- Figures 12-13: world maps ----

func BenchmarkFig12WorldGrid(b *testing.B) {
	_, st, db := benchFixture(b)
	b.ResetTimer()
	var cells float64
	for i := 0; i < b.N; i++ {
		maps, err := st.BuildWorldMaps(db)
		if err != nil {
			b.Fatal(err)
		}
		cells = float64(maps.Counts.NonEmptyCells())
	}
	b.ReportMetric(cells, "cells")
}

func BenchmarkFig13DiurnalGrid(b *testing.B) {
	_, st, db := benchFixture(b)
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		maps, err := st.BuildWorldMaps(db)
		if err != nil {
			b.Fatal(err)
		}
		// Aggregate diurnal share of the densest cell as the shape metric.
		best := 0
		for _, c := range maps.Counts.Cells() {
			if c.Total > best {
				best = c.Total
				frac = float64(c.Marked) / float64(c.Total)
			}
		}
	}
	b.ReportMetric(frac, "densest-cell-frac")
}

// ---- Tables 3-4, Figures 14-17, Table 5 ----

func BenchmarkTable3CountryTable(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		rows := st.CountryTable(3)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		top = rows[0].FracDiurnal
	}
	b.ReportMetric(top, "top-frac")
}

func BenchmarkTable4RegionTable(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var n float64
	for i := 0; i < b.N; i++ {
		rows := st.RegionTable()
		n = float64(len(rows))
	}
	b.ReportMetric(n, "regions")
}

func BenchmarkFig14PhaseLongitude(b *testing.B) {
	_, st, db := benchFixture(b)
	b.ResetTimer()
	var r float64
	for i := 0; i < b.N; i++ {
		res, err := st.PhaseVsLongitude(db, true)
		if err != nil {
			b.Fatal(err)
		}
		r = res.R
	}
	b.ReportMetric(r, "corr")
}

func BenchmarkFig15AllocationTrend(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var slope float64
	for i := 0; i < b.N; i++ {
		res, err := st.AllocationDateTrend(3)
		if err != nil {
			b.Fatal(err)
		}
		slope = res.Fit.Slope
	}
	b.ReportMetric(slope, "pct-per-month")
}

func BenchmarkFig16GDPScatter(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var r float64
	for i := 0; i < b.N; i++ {
		res, err := st.CorrelateGDP(3)
		if err != nil {
			b.Fatal(err)
		}
		r = res.R
	}
	b.ReportMetric(r, "corr")
}

func BenchmarkTable5ANOVA(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var gdpP float64
	for i := 0; i < b.N; i++ {
		tab, err := st.ANOVATable(3)
		if err != nil {
			b.Fatal(err)
		}
		gdpP = tab.P[0][0]
	}
	b.ReportMetric(gdpP, "gdp-p")
}

func BenchmarkFig17LinkTypes(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var classified float64
	for i := 0; i < b.N; i++ {
		res, err := st.LinkTypes(11)
		if err != nil {
			b.Fatal(err)
		}
		classified = res.ClassifiedFrac
	}
	b.ReportMetric(classified, "classified-frac")
}

// ---- World measurement itself ----

func BenchmarkMeasureWorld200x7d(b *testing.B) {
	w, err := world.Generate(world.Config{Blocks: 200, Seed: 55})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.MeasureWorld(w, analysis.StudyConfig{Days: 7, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationRatioEWMA quantifies the bias of smoothing p/t directly
// (the paper's A12w variant) against the separate-EWMA estimator.
func BenchmarkAblationRatioEWMA(b *testing.B) {
	const trueA = 0.5
	net := netsim.NewNetwork(2)
	blk := &netsim.Block{ID: netsim.MakeBlockID(10, 9, 9), Seed: 2}
	for h := 0; h < 200; h++ {
		blk.Behaviors[h] = netsim.Intermittent{P: trueA, Seed: uint64(h)}
	}
	net.AddBlock(blk)
	b.ResetTimer()
	var biasRatio, biasSep float64
	for i := 0; i < b.N; i++ {
		prober := trinocular.New(net, trinocular.Config{}, uint64(i))
		if err := prober.AddBlock(blk.ID, blk.EverActive()); err != nil {
			b.Fatal(err)
		}
		sep := core.NewEstimator(trueA)
		ratio := core.NewRatioEstimator(trueA, core.AlphaShort)
		for r := 0; r < 2000; r++ {
			now := analysis.DefaultStart.Add(time.Duration(r) * 660 * time.Second)
			obs, err := prober.ProbeRound(blk.ID, now, trueA)
			if err != nil {
				b.Fatal(err)
			}
			sep.Observe(obs.Positive, obs.Total)
			ratio.Observe(obs.Positive, obs.Total)
		}
		biasSep = sep.LongTerm() - trueA
		biasRatio = ratio.Estimate() - trueA
	}
	b.ReportMetric(biasRatio, "ratio-bias")
	b.ReportMetric(biasSep, "separate-bias")
}

// BenchmarkAblationStrictVsRelaxed compares the population sizes the two
// classification rules admit over the same measured world.
func BenchmarkAblationStrictVsRelaxed(b *testing.B) {
	_, st, _ := benchFixture(b)
	b.ResetTimer()
	var strict, either float64
	for i := 0; i < b.N; i++ {
		strict, either = st.DiurnalFraction()
	}
	b.ReportMetric(strict, "strict-frac")
	b.ReportMetric(either, "either-frac")
}

// BenchmarkAblationGain measures estimator tracking error at different
// short-term gains.
func BenchmarkAblationGain(b *testing.B) {
	for _, gain := range []float64{0.05, 0.1, 0.2} {
		b.Run(gainName(gain), func(b *testing.B) {
			net := netsim.NewNetwork(3)
			blk := &netsim.Block{ID: netsim.MakeBlockID(11, 0, 0), Seed: 3}
			for h := 0; h < 100; h++ {
				blk.Behaviors[h] = netsim.Diurnal{Phase: 9 * time.Hour, Duration: 8 * time.Hour, Seed: uint64(h)}
			}
			for h := 100; h < 150; h++ {
				blk.Behaviors[h] = netsim.AlwaysOn{}
			}
			net.AddBlock(blk)
			b.ResetTimer()
			var rmse float64
			for i := 0; i < b.N; i++ {
				prober := trinocular.New(net, trinocular.Config{}, uint64(i))
				if err := prober.AddBlock(blk.ID, blk.EverActive()); err != nil {
					b.Fatal(err)
				}
				est := core.NewEstimatorWithGains(0.5, gain, core.AlphaLong)
				var se float64
				n := 0
				for r := 0; r < 2000; r++ {
					now := analysis.DefaultStart.Add(time.Duration(r) * 660 * time.Second)
					obs, err := prober.ProbeRound(blk.ID, now, est.Operational())
					if err != nil {
						b.Fatal(err)
					}
					est.Observe(obs.Positive, obs.Total)
					if r >= 200 {
						d := est.ShortTerm() - blk.TrueA(now)
						se += d * d
						n++
					}
				}
				rmse = math.Sqrt(se / float64(n))
			}
			b.ReportMetric(rmse, "rmse")
		})
	}
}

func gainName(g float64) string {
	switch g {
	case 0.05:
		return "alpha05"
	case 0.1:
		return "alpha10"
	default:
		return "alpha20"
	}
}

// BenchmarkAblationProbePolicy compares adaptive stop-on-first-positive
// probing against fixed-k probing: equal estimate quality, very different
// probe budgets.
func BenchmarkAblationProbePolicy(b *testing.B) {
	mk := func(fixed int) (float64, float64) {
		net := netsim.NewNetwork(4)
		blk := &netsim.Block{ID: netsim.MakeBlockID(12, 0, 0), Seed: 4}
		for h := 0; h < 200; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.6, Seed: uint64(h)}
		}
		net.AddBlock(blk)
		prober := trinocular.New(net, trinocular.Config{FixedProbes: fixed}, 9)
		if err := prober.AddBlock(blk.ID, blk.EverActive()); err != nil {
			b.Fatal(err)
		}
		est := core.NewEstimator(0.6)
		for r := 0; r < 1500; r++ {
			now := analysis.DefaultStart.Add(time.Duration(r) * 660 * time.Second)
			obs, err := prober.ProbeRound(blk.ID, now, est.Operational())
			if err != nil {
				b.Fatal(err)
			}
			est.Observe(obs.Positive, obs.Total)
		}
		hours := 1500.0 * 660 / 3600
		return est.LongTerm(), float64(prober.ProbesSent()) / hours
	}
	b.ResetTimer()
	var adaptiveRate, fixedRate float64
	for i := 0; i < b.N; i++ {
		_, adaptiveRate = mk(0)
		_, fixedRate = mk(10)
	}
	b.ReportMetric(adaptiveRate, "adaptive-probes/hour")
	b.ReportMetric(fixedRate, "fixed10-probes/hour")
}

// BenchmarkAblationMidnightTrim compares diurnal phase stability with and
// without trimming the series to midnight UTC boundaries.
func BenchmarkAblationMidnightTrim(b *testing.B) {
	// Two blocks with the same schedule measured from campaigns starting at
	// different wall-clock times: with trimming, their phases agree; with
	// raw (untrimmed) series, phase depends on campaign start.
	mkRun := func(startOffset time.Duration, seed uint64) *core.BlockRun {
		net := netsim.NewNetwork(seed)
		blk := &netsim.Block{ID: netsim.MakeBlockID(13, 0, 0), Seed: seed}
		for h := 0; h < 50; h++ {
			blk.Behaviors[h] = netsim.AlwaysOn{}
		}
		for h := 50; h < 170; h++ {
			blk.Behaviors[h] = netsim.Diurnal{Phase: 9 * time.Hour, Duration: 8 * time.Hour, Seed: seed + uint64(h)}
		}
		net.AddBlock(blk)
		pl := core.NewPipeline(net, core.PipelineConfig{
			Start:  analysis.DefaultStart.Add(startOffset),
			Rounds: analysis.RoundsForDays(10),
			Seed:   seed,
		})
		run, err := pl.RunBlock(blk.ID)
		if err != nil {
			b.Fatal(err)
		}
		return run
	}
	b.ResetTimer()
	var trimmedDiff, rawDiff float64
	for i := 0; i < b.N; i++ {
		a := mkRun(0, 21)
		c := mkRun(7*time.Hour+31*time.Minute, 22)
		trimmedDiff = math.Abs(angleDiff(a.Result.Phase, c.Result.Phase))
		// Untrimmed: classify the raw series directly.
		ra, err := core.DetectDiurnal(a.Short.Values, a.Days)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := core.DetectDiurnal(c.Short.Values, c.Days)
		if err != nil {
			b.Fatal(err)
		}
		rawDiff = math.Abs(angleDiff(ra.Phase, rc.Phase))
	}
	b.ReportMetric(trimmedDiff, "trimmed-phase-diff")
	b.ReportMetric(rawDiff, "raw-phase-diff")
}

func angleDiff(a, b float64) float64 {
	d := a - b
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// BenchmarkAblationFFTvsACF compares the paper's spectral detector against
// an autocorrelation-based alternative: per-call cost and verdict agreement
// on a mixed population of clean series.
func BenchmarkAblationFFTvsACF(b *testing.B) {
	days := 14
	n := int(float64(days) * 86400 / 660)
	mk := func(amp float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			hour := math.Mod(float64(i)*660/3600, 24)
			out[i] = 0.5 + amp*math.Cos(2*math.Pi*(hour-14)/24)
		}
		return out
	}
	population := [][]float64{mk(0), mk(0.05), mk(0.15), mk(0.3)}
	samplesPerDay := 86400.0 / 660
	b.ResetTimer()
	agree := 0
	for i := 0; i < b.N; i++ {
		agree = 0
		for _, vals := range population {
			fft, err := core.DetectDiurnal(vals, days)
			if err != nil {
				b.Fatal(err)
			}
			acf, err := core.DetectDiurnalACF(vals, samplesPerDay)
			if err != nil {
				b.Fatal(err)
			}
			if fft.Class.IsDiurnal() == acf.Diurnal {
				agree++
			}
		}
	}
	b.ReportMetric(float64(agree)/float64(len(population)), "agreement")
}
