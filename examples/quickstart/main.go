// Quickstart: build one diurnal /24 block, probe it adaptively with the
// Trinocular-style prober for two weeks of simulated time, estimate its
// availability with the paper's EWMA estimators, and detect its diurnal
// pattern with the spectral test — the whole §2 pipeline on one block.
package main

import (
	"fmt"
	"log"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/netsim"
	"sleepnet/internal/report"
)

func main() {
	// 1. A simulated /24: 60 always-on servers and 120 office machines
	//    that are switched on around 09:00 local time for ~9 hours.
	blk := &netsim.Block{ID: netsim.MakeBlockID(192, 0, 2), Seed: 1}
	for h := 1; h <= 60; h++ {
		blk.Behaviors[h] = netsim.AlwaysOn{}
	}
	for h := 61; h <= 180; h++ {
		blk.Behaviors[h] = netsim.Diurnal{
			Phase:      9 * time.Hour,
			Duration:   9 * time.Hour,
			StartSigma: 30 * time.Minute,
			Seed:       uint64(h),
		}
	}
	net := netsim.NewNetwork(7)
	net.AddBlock(blk)

	// 2. Probe it for 14 days, every 11 minutes, 1-15 ICMP probes per
	//    round, exactly as the paper's outage detector would.
	pl := core.NewPipeline(net, core.PipelineConfig{
		Start:  analysis.DefaultStart,
		Rounds: analysis.RoundsForDays(14),
		Seed:   7,
	})
	run, err := pl.RunBlock(blk.ID)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Results: availability estimates and the diurnal classification.
	fmt.Printf("block %s over %d days\n", run.ID, run.Days)
	fmt.Printf("probing cost: %d probes (%.1f per hour — the paper budgets < 20)\n",
		run.ProbesSent, float64(run.ProbesSent)/(float64(run.Short.Len())*660/3600))
	fmt.Println("\nshort-term availability estimate Âs:")
	fmt.Print(report.Series(run.Short.Values, 90, 8))

	res := run.Result
	fmt.Printf("\nclassification: %s diurnal\n", res.Class)
	fmt.Printf("diurnal FFT bin: %d (N_d = %d), amplitude %.1f vs next strongest %.1f\n",
		res.FundamentalBin, run.Days, res.DiurnalAmp, res.NextAmp)
	fmt.Printf("phase: %.2f rad — when this block wakes up relative to midnight UTC\n", res.Phase)
	fmt.Printf("stationarity slope: %+.4f per day (|slope| must be small for a valid FFT)\n", run.SlopePerDay)
}
