// Census: the §5.6 application — estimating the size of the Internet in
// active public addresses, and showing why a single-snapshot scan is only
// representative for non-diurnal blocks. Samples the simulated world's
// total responding addresses hourly over several days, separates the
// diurnal contribution, and reports the daily swing that snapshot scans
// would mis-read without diurnal calibration.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/report"
	"sleepnet/internal/world"
)

func main() {
	blocks := flag.Int("blocks", 1200, "world size in /24 blocks")
	seed := flag.Uint64("seed", 41, "seed")
	days := flag.Int("days", 4, "census duration in days")
	flag.Parse()

	w, err := world.Generate(world.Config{Blocks: *blocks, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	start := analysis.DefaultStart
	pts, err := analysis.AddressCensus(w, start, time.Duration(*days)*24*time.Hour, time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	total := make([]float64, len(pts))
	nonDiurnal := make([]float64, len(pts))
	for i, p := range pts {
		total[i] = p.Active
		nonDiurnal[i] = p.ActiveNonDiurnal
	}
	fmt.Printf("active public addresses, hourly, %d days, %d blocks:\n", *days, len(w.Blocks))
	fmt.Print(report.Series(total, 96, 10))
	fmt.Println("\nnon-diurnal contribution only:")
	fmt.Print(report.Series(nonDiurnal, 96, 10))

	sw, err := analysis.SummarizeCensus(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal:   mean %.0f, min %.0f, max %.0f — daily swing %s of mean\n",
		sw.Mean, sw.Min, sw.Max, report.Pct(sw.SwingFraction))

	// The same summary over non-diurnal blocks only: the swing collapses.
	ndPts := make([]analysis.CensusPoint, len(pts))
	for i, p := range pts {
		ndPts[i] = analysis.CensusPoint{Time: p.Time, Active: p.ActiveNonDiurnal}
	}
	swND, err := analysis.SummarizeCensus(ndPts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-diurnal only: swing %s of mean\n", report.Pct(swND.SwingFraction))
	fmt.Println("\n=> a snapshot scan is representative for non-diurnal blocks; for")
	fmt.Println("   diurnal blocks one needs measurements at several times of day —")
	fmt.Println("   which is exactly what the diurnal classifier identifies (§5.6).")
}
