// Phasegeo: the paper's §5.2 "when does the Internet sleep?" analysis.
// Measures a synthetic world, extracts the diurnal phase of every diurnal
// block from its FFT coefficient, geolocates the blocks, and shows that
// phase tracks longitude — then uses the fitted phase→longitude predictor
// to estimate where blocks are from their sleep schedule alone (Fig 14).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/geo"
	"sleepnet/internal/world"
)

func main() {
	blocks := flag.Int("blocks", 1500, "world size in /24 blocks")
	seed := flag.Uint64("seed", 23, "seed")
	flag.Parse()

	w, err := world.Generate(world.Config{Blocks: *blocks, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	st, err := analysis.MeasureWorld(w, analysis.StudyConfig{Days: 14, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	db := geo.FromWorld(w, 0.93, *seed)

	strict, err := st.PhaseVsLongitude(db, false)
	if err != nil {
		log.Fatal(err)
	}
	relaxed, err := st.PhaseVsLongitude(db, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 14a strict:  %4d blocks, unrolled phase vs longitude r = %.3f (paper: 0.835)\n",
		strict.Blocks, strict.R)
	fmt.Printf("Fig 14b relaxed: %4d blocks, r = %.3f (paper: 0.763)\n",
		relaxed.Blocks, relaxed.R)

	// Use the predictor to geolocate diurnal blocks from phase alone and
	// score it against the geolocation database (Fig 14c's application).
	var absErrs []float64
	for _, b := range st.Measured() {
		if b.Class != core.StrictDiurnal {
			continue
		}
		e, ok := db.Lookup(b.Info.ID)
		if !ok {
			continue
		}
		lon, _, ok := relaxed.PredictLongitude(b.Phase)
		if !ok {
			continue
		}
		d := math.Abs(lon - e.Lon)
		if d > 180 {
			d = 360 - d
		}
		absErrs = append(absErrs, d)
	}
	if len(absErrs) == 0 {
		log.Fatal("no predictable blocks")
	}
	var sum float64
	within20, within45 := 0, 0
	for _, d := range absErrs {
		sum += d
		if d <= 20 {
			within20++
		}
		if d <= 45 {
			within45++
		}
	}
	fmt.Printf("\nphase-only geolocation of %d strictly diurnal blocks:\n", len(absErrs))
	fmt.Printf("  mean |longitude error|: %.1f°\n", sum/float64(len(absErrs)))
	fmt.Printf("  within ±20°: %.1f%%   within ±45°: %.1f%%\n",
		100*float64(within20)/float64(len(absErrs)),
		100*float64(within45)/float64(len(absErrs)))
	fmt.Println("\n(the paper: most phases predict longitude within ±20°, except the")
	fmt.Println(" -2..0 phase range that only resolves the hemisphere — driven by")
	fmt.Println(" China's single timezone across 60° of longitude)")
}
