// Countrystudy: the paper's §5 policy analysis in miniature. Generates a
// synthetic world, measures every block, and correlates diurnal behaviour
// with country, region, per-capita GDP, and electricity consumption —
// reproducing Tables 3 and 4, Figure 16, and the Table 5 ANOVA.
package main

import (
	"flag"
	"fmt"
	"log"

	"sleepnet/internal/analysis"
	"sleepnet/internal/report"
	"sleepnet/internal/world"
)

func main() {
	blocks := flag.Int("blocks", 1500, "world size in /24 blocks")
	seed := flag.Uint64("seed", 11, "seed")
	flag.Parse()

	w, err := world.Generate(world.Config{Blocks: *blocks, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	st, err := analysis.MeasureWorld(w, analysis.StudyConfig{Days: 14, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	minBlocks := *blocks / 400
	if minBlocks < 3 {
		minBlocks = 3
	}

	strict, either := st.DiurnalFraction()
	fmt.Printf("measured %d blocks: %s strictly diurnal, %s either\n\n",
		len(st.Measured()), report.Pct(strict), report.Pct(either))

	fmt.Println("== Table 3: countries ranked by diurnal fraction ==")
	rows := [][]string{}
	for i, r := range st.CountryTable(minBlocks) {
		if i >= 12 {
			break
		}
		rows = append(rows, []string{r.Code, r.Name, fmt.Sprint(r.Blocks),
			report.F(r.FracDiurnal), fmt.Sprintf("%.0f", r.GDP)})
	}
	fmt.Print(report.Table([]string{"code", "country", "blocks", "frac", "GDP"}, rows))

	fmt.Println("\n== Table 4: regions ==")
	rows = rows[:0]
	for _, r := range st.RegionTable() {
		rows = append(rows, []string{r.Region, fmt.Sprint(r.Blocks), report.F(r.FracDiurnal)})
	}
	fmt.Print(report.Table([]string{"region", "blocks", "frac"}, rows))

	fmt.Println("\n== Fig 16: diurnalness vs GDP ==")
	gdp, err := st.CorrelateGDP(minBlocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation: %.3f (paper: -0.526); slope %.3g per GDP dollar\n",
		gdp.R, gdp.Fit.Slope)

	fmt.Println("\n== Table 5: ANOVA of country-level factors ==")
	tab, err := st.ANOVATable(minBlocks)
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range tab.Names {
		sig := ""
		if tab.P[i][i] < 0.05 {
			sig = "  <-- significant"
		}
		fmt.Printf("  %-15s p = %s%s\n", name, report.F(tab.P[i][i]), sig)
	}
	fmt.Println("pairwise (off-diagonal) significant combinations:")
	for i := range tab.Names {
		for j := i + 1; j < len(tab.Names); j++ {
			if tab.P[i][j] < 0.05 {
				fmt.Printf("  %s x %s: p = %s\n", tab.Names[i], tab.Names[j], report.F(tab.P[i][j]))
			}
		}
	}
}
