// Multisite: the paper's §3.3 stability analysis as a runnable program.
// Measures the same world from three vantage points (the paper's Los
// Angeles, Colorado, and Keio sites), cross-tabulates their verdicts
// (Table 2), tests the frequency distributions for distributional agreement
// (two-sample KS), and shows the majority-vote consensus classification.
package main

import (
	"flag"
	"fmt"
	"log"

	"sleepnet/internal/analysis"
	"sleepnet/internal/report"
	"sleepnet/internal/world"
)

func main() {
	blocks := flag.Int("blocks", 1000, "world size in /24 blocks")
	seed := flag.Uint64("seed", 53, "seed")
	flag.Parse()

	w, err := world.Generate(world.Config{Blocks: *blocks, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	sites := []struct {
		name string
		seed uint64
	}{
		{"w (Los Angeles)", *seed ^ 0x10},
		{"c (Colorado)", *seed ^ 0x20},
		{"j (Keio)", *seed ^ 0x30},
	}
	studies := make([]*analysis.Study, len(sites))
	for i, s := range sites {
		st, err := analysis.MeasureWorld(w, analysis.StudyConfig{Days: 14, Seed: s.seed})
		if err != nil {
			log.Fatal(err)
		}
		studies[i] = st
		strict, either := st.DiurnalFraction()
		fmt.Printf("site %-18s %s strict, %s either diurnal\n", s.name, report.Pct(strict), report.Pct(either))
	}

	fmt.Println("\n== Table 2: pairwise agreement ==")
	for i := 0; i < len(studies); i++ {
		for j := i + 1; j < len(studies); j++ {
			cs, err := analysis.CompareSites(studies[i], studies[j])
			if err != nil {
				log.Fatal(err)
			}
			ks, err := analysis.CompareSiteFrequencies(studies[i], studies[j])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s vs %s: strong disagreement %s, frequency KS D = %.3f\n",
				sites[i].name, sites[j].name, report.Pct(cs.StrongDisagree), ks.D)
		}
	}

	fmt.Println("\n== three-site consensus (majority vote) ==")
	cons, err := analysis.ConsensusClassify(studies...)
	if err != nil {
		log.Fatal(err)
	}
	strictN := 0
	for _, s := range cons.Strict {
		if s {
			strictN++
		}
	}
	fmt.Printf("consensus population: %d blocks, %d strictly diurnal (%s)\n",
		cons.Blocks, strictN, report.Pct(float64(strictN)/float64(cons.Blocks)))
	fmt.Printf("verdicts flipped vs site w alone: %d (%s)\n",
		cons.FlippedFromFirst, report.Pct(float64(cons.FlippedFromFirst)/float64(cons.Blocks)))
	fmt.Println("\n=> measurement location does not change the conclusions (§3.3);")
	fmt.Println("   consensus trims the residual single-site noise.")
}
