// Linktech: the paper's §5.5 access-technology analysis. Classifies every
// block's reverse DNS names with the 16-keyword matcher (suppressing minor
// features, discarding rare keywords), joins the surviving labels with the
// measured diurnal classifications, and reports the fraction of diurnal
// blocks per technology (Fig 17) — including the paper's surprise that
// dialup is barely diurnal while DSL is.
//
// It also demonstrates the §2.3.2 organization clustering: picking an
// operator by keyword and reporting the diurnalness of its blocks.
package main

import (
	"flag"
	"fmt"
	"log"

	"sleepnet/internal/analysis"
	"sleepnet/internal/asn"
	"sleepnet/internal/core"
	"sleepnet/internal/netsim"
	"sleepnet/internal/report"
	"sleepnet/internal/world"
)

func main() {
	blocks := flag.Int("blocks", 1500, "world size in /24 blocks")
	seed := flag.Uint64("seed", 37, "seed")
	org := flag.String("org", "china", "organization keyword to inspect")
	flag.Parse()

	w, err := world.Generate(world.Config{Blocks: *blocks, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	st, err := analysis.MeasureWorld(w, analysis.StudyConfig{Days: 14, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	// Fig 17: diurnal fraction per link-technology keyword.
	res, err := st.LinkTypes(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rDNS classification: %s of blocks have a feature (paper: 46.3%%), %s multiple (paper: 11.4%%)\n\n",
		report.Pct(res.ClassifiedFrac), report.Pct(res.MultiFrac))
	fmt.Println("Fig 17: fraction of diurnal blocks per access keyword:")
	labels := make([]string, 0, len(res.Rows))
	vals := make([]float64, 0, len(res.Rows))
	for _, r := range res.Rows {
		labels = append(labels, fmt.Sprintf("%-5s n=%-4d", r.Keyword, r.Blocks))
		vals = append(vals, r.FracDiurnal)
	}
	fmt.Print(report.BarChart(labels, vals, 50))

	// Organization view (§2.3.2): cluster AS names, pick an operator by
	// keyword, report its blocks' diurnalness.
	table := asn.FromWorld(w, 0.9941, *seed)
	ids := table.BlocksOfOrg(*org)
	if len(ids) == 0 {
		fmt.Printf("\nno blocks found for organization keyword %q\n", *org)
		return
	}
	byID := make(map[netsim.BlockID]core.DiurnalClass)
	for _, b := range st.Measured() {
		byID[b.Info.ID] = b.Class
	}
	var d, n int
	for _, id := range ids {
		if cls, ok := byID[id]; ok {
			n++
			if cls == core.StrictDiurnal {
				d++
			}
		}
	}
	fmt.Printf("\norganization %q: %d blocks via AS-name clustering, %d measured, %s diurnal\n",
		*org, len(ids), n, report.Pct(float64(d)/float64(max(n, 1))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
